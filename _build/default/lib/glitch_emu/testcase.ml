type t = {
  name : string;
  source : string;
  instrs : Thumb.Instr.t list;
  target_index : int;
}

let skip_reg = Thumb.Reg.r5
let skip_marker = 0xAD
let normal_reg = Thumb.Reg.r6
let normal_marker = 0xAA

let target_word t = Thumb.Encode.instr (List.nth t.instrs t.target_index)

(* Flag setup that makes each condition hold, so the branch is taken and
   the skip marker is dead code in an unglitched run. *)
let setup_for (cond : Thumb.Instr.cond) =
  match cond with
  | EQ -> "movs r0, #4\ncmp r0, #4"
  | NE -> "movs r0, #1\ncmp r0, #0"
  | CS -> "movs r0, #1\ncmp r0, #0"
  | CC -> "movs r0, #0\ncmp r0, #1"
  | MI -> "movs r0, #0\nsubs r0, #1"
  | PL -> "movs r0, #1\ncmp r0, #0"
  | VS -> "movs r0, #1\nlsls r0, r0, #31\nsubs r0, #1\nadds r0, #1"
  | VC -> "movs r0, #0\ncmp r0, #0"
  | HI -> "movs r0, #2\ncmp r0, #1"
  | LS -> "movs r0, #0\ncmp r0, #1"
  | GE -> "movs r0, #1\ncmp r0, #0"
  | LT -> "movs r0, #0\ncmp r0, #1"
  | GT -> "movs r0, #1\ncmp r0, #0"
  | LE -> "movs r0, #0\ncmp r0, #1"

let conditional_branch cond =
  let setup = setup_for cond in
  let setup_len = List.length (String.split_on_char '\n' setup) in
  let source =
    Printf.sprintf
      "%s\nb%s taken\nmovs r5, #0xAD\ntaken:\nmovs r6, #0xAA\nbkpt #0" setup
      (Thumb.Instr.cond_name cond)
  in
  { name = "B" ^ String.uppercase_ascii (Thumb.Instr.cond_name cond);
    source;
    instrs = Thumb.Asm.assemble source;
    target_index = setup_len }

let all_conditional_branches =
  List.map conditional_branch Thumb.Instr.all_conds

(* Non-branch targets for the "skip any defensive instruction" analysis:
   each snippet computes r5 = 0xAD iff the target's effect is missing,
   so the campaign's marker convention applies unchanged. *)
let make name source target_index =
  { name; source; instrs = Thumb.Asm.assemble source; target_index }

let store_case =
  make "STRB"
    "movs r2, #0xAD\nmov r3, sp\nstrb r2, [r3, #1]\nldrb r4, [r3, #1]\nmovs r5, #0xAD\nsubs r5, r5, r4\nmovs r6, #0xAA\nbkpt #0"
    2

let load_case =
  make "LDRB"
    "movs r2, #0xAD\nmov r3, sp\nstrb r2, [r3, #1]\nmovs r4, #0\nldrb r4, [r3, #1]\nmovs r5, #0xAD\nsubs r5, r5, r4\nmovs r6, #0xAA\nbkpt #0"
    4

let alu_case =
  make "ADDS"
    "movs r4, #0\nadds r4, #0xAD\nmovs r5, #0xAD\nsubs r5, r5, r4\nmovs r6, #0xAA\nbkpt #0"
    1

let non_branch_cases = [ store_case; load_case; alu_case ]
