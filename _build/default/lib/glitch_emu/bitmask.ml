let popcount v =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0 v

let choose n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
    go 1 1
  end

(* Gosper's hack: next integer with the same popcount. *)
let next_same_weight v =
  let c = v land -v in
  let r = v + c in
  r lor (((v lxor r) / c) lsr 2)

let iter_of_weight ~width ~weight f =
  if weight < 0 || weight > width then ()
  else if weight = 0 then f 0
  else begin
    let limit = 1 lsl width in
    let v = ref ((1 lsl weight) - 1) in
    while !v < limit do
      f !v;
      v := next_same_weight !v
    done
  end

let of_weight ~width ~weight =
  let acc = ref [] in
  iter_of_weight ~width ~weight (fun m -> acc := m :: !acc);
  List.rev !acc

let iter_all ~width f =
  for weight = 0 to width do
    iter_of_weight ~width ~weight (fun mask -> f ~weight ~mask)
  done
