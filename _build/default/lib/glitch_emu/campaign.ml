open Machine

type category =
  | Success
  | Bad_read
  | Bad_fetch
  | Invalid_instruction
  | Failed
  | No_effect

let categories =
  [ Success; Bad_read; Bad_fetch; Invalid_instruction; Failed; No_effect ]

let category_name = function
  | Success -> "Success"
  | Bad_read -> "Bad Read"
  | Bad_fetch -> "Bad Fetch"
  | Invalid_instruction -> "Invalid Instruction"
  | Failed -> "Failed"
  | No_effect -> "No Effect"

let category_index = function
  | Success -> 0
  | Bad_read -> 1
  | Bad_fetch -> 2
  | Invalid_instruction -> 3
  | Failed -> 4
  | No_effect -> 5

type config = {
  flip : Fault_model.flip;
  zero_is_invalid : bool;
  max_steps : int;
}

let default_config flip = { flip; zero_is_invalid = false; max_steps = 200 }

type counts = int array

type result = {
  case : Testcase.t;
  config : config;
  by_weight : counts array;
  totals : counts;
}

(* A small dedicated address space: snippets are a handful of
   instructions and a few words of stack. Small regions keep the
   65,536-run sweep cheap to reset. *)
let flash_base = 0x08000000
let flash_size = 0x400
let sram_base = 0x20000000
let sram_size = 0x400
let stack_top = sram_base + sram_size - 16

type rig = { mem : Memory.t; image : bytes }

let make_rig case =
  let mem = Memory.create () in
  Memory.map mem ~addr:flash_base ~size:flash_size;
  Memory.map mem ~addr:sram_base ~size:sram_size;
  { mem; image = Thumb.Encode.to_bytes case.Testcase.instrs }

(* Execute until stop, optionally treating a fetched 0x0000 as an
   invalid instruction (Figure 2(c)'s modified ISA). *)
let run_to_stop ~zero_is_invalid ~max_steps mem cpu =
  let rec go remaining =
    if remaining = 0 then Exec.Step_limit
    else
      match Memory.read_u16 mem (Cpu.pc cpu) with
      | Error (Memory.Unmapped a | Memory.Unaligned a) -> Exec.Bad_fetch a
      | Ok 0 when zero_is_invalid -> Exec.Invalid_instruction 0
      | Ok w -> (
        match Exec.execute mem cpu (Thumb.Decode.instr w) with
        | Exec.Running -> go (remaining - 1)
        | Exec.Stopped s -> s)
  in
  go max_steps

let classify cpu (stop : Exec.stop) : category =
  match stop with
  | Exec.Breakpoint _ ->
    if Cpu.get cpu Testcase.skip_reg = Testcase.skip_marker then Success
    else No_effect
  | Exec.Bad_read _ | Exec.Bad_write _ -> Bad_read
  | Exec.Bad_fetch _ -> Bad_fetch
  | Exec.Invalid_instruction _ -> Invalid_instruction
  | Exec.Swi_trap _ | Exec.Step_limit -> Failed

let run_mask config rig (case : Testcase.t) ~mask =
  Memory.clear rig.mem;
  Memory.load_bytes rig.mem ~addr:flash_base rig.image;
  let word = Fault_model.apply config.flip ~mask (Testcase.target_word case) in
  (match
     Memory.write_u16 rig.mem (flash_base + (2 * case.target_index)) word
   with
  | Ok () -> ()
  | Error _ -> assert false);
  let cpu = Cpu.create ~sp:stack_top ~pc:flash_base () in
  let stop =
    run_to_stop ~zero_is_invalid:config.zero_is_invalid
      ~max_steps:config.max_steps rig.mem cpu
  in
  classify cpu stop

let run_one config case ~mask = run_mask config (make_rig case) case ~mask

let width = 16

let run_case config (case : Testcase.t) =
  let rig = make_rig case in
  let by_weight =
    Array.init (width + 1) (fun _ -> Array.make (List.length categories) 0)
  in
  let totals = Array.make (List.length categories) 0 in
  Bitmask.iter_all ~width (fun ~weight:_ ~mask ->
      let flipped = Fault_model.flipped_bits config.flip ~width ~mask in
      let cat = run_mask config rig case ~mask in
      let idx = category_index cat in
      by_weight.(flipped).(idx) <- by_weight.(flipped).(idx) + 1;
      if flipped > 0 then totals.(idx) <- totals.(idx) + 1);
  { case; config; by_weight; totals }

let run_all config cases = List.map (run_case config) cases

let success_rate_by_weight result =
  List.init (width + 1) (fun flipped ->
      let row = result.by_weight.(flipped) in
      let den = Array.fold_left ( + ) 0 row in
      let num = row.(category_index Success) in
      (flipped, Stats.Rate.pct ~num ~den))
  |> List.filter (fun (flipped, _) ->
         Array.fold_left ( + ) 0 result.by_weight.(flipped) > 0)

let category_percent result cat =
  let num = result.totals.(category_index cat) in
  let den = Array.fold_left ( + ) 0 result.totals in
  Stats.Rate.pct ~num ~den
