open Minic

type error = { message : string }

exception Error of error

let pp_error ppf { message } = Fmt.string ppf message
let fail fmt = Fmt.kstr (fun message -> raise (Error { message })) fmt

(* Minimal signedness inference: [unsigned] operands make an operation
   unsigned (C's usual arithmetic conversions, flattened to one bit). *)
type sign = Signed | Unsigned

let sign_of_ty = function
  | Ast.Tuint -> Unsigned
  | Ast.Tint | Ast.Tvoid | Ast.Tenum _ -> Signed

type var_info = { var : Ir.var; volatile : bool; sign : sign }

type env = {
  sema : Sema.t;
  externs : (string * int) list;
  globals : (string * var_info) list;
  mutable locals : (string * var_info) list;  (** innermost first *)
  builder : Ir.Builder.t;
  mutable break_labels : string list;
  mutable continue_labels : string list;
}

let lookup_var env name =
  match List.assoc_opt name env.locals with
  | Some info -> Some info
  | None -> List.assoc_opt name env.globals

let binop_ir (op : Ast.binop) sign : Ir.binop =
  match op with
  | Ast.Add -> Ir.Add
  | Ast.Sub -> Ir.Sub
  | Ast.Mul -> Ir.Mul
  | Ast.Div -> Ir.Sdiv
  | Ast.Mod -> Ir.Srem
  | Ast.Band -> Ir.And
  | Ast.Bor -> Ir.Or
  | Ast.Bxor -> Ir.Xor
  | Ast.Shl -> Ir.Shl
  | Ast.Shr -> (match sign with Signed -> Ir.Ashr | Unsigned -> Ir.Lshr)
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor ->
    invalid_arg "binop_ir: not an arithmetic operator"

let icmp_ir (op : Ast.binop) sign : Ir.icmp =
  match (op, sign) with
  | Ast.Eq, _ -> Ir.Eq
  | Ast.Ne, _ -> Ir.Ne
  | Ast.Lt, Signed -> Ir.Slt
  | Ast.Le, Signed -> Ir.Sle
  | Ast.Gt, Signed -> Ir.Sgt
  | Ast.Ge, Signed -> Ir.Sge
  | Ast.Lt, Unsigned -> Ir.Ult
  | Ast.Le, Unsigned -> Ir.Ule
  | Ast.Gt, Unsigned -> Ir.Ugt
  | Ast.Ge, Unsigned -> Ir.Uge
  | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
    | Ast.Bxor | Ast.Shl | Ast.Shr | Ast.Land | Ast.Lor), _ ->
    invalid_arg "icmp_ir: not a comparison"

(* Expression signedness, used to pick signed vs unsigned compares. *)
let rec expr_sign env (e : Ast.expr) : sign =
  match e with
  | Ast.Int _ -> Signed
  | Ast.Ident name -> (
    if List.mem_assoc name env.sema.enum_constants then Signed
    else
      match lookup_var env name with
      | Some { sign; _ } -> sign
      | None -> Signed)
  | Ast.Unop (_, e) -> expr_sign env e
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge
               | Ast.Land | Ast.Lor), _, _) -> Signed
  | Ast.Binop (_, a, b) -> (
    match (expr_sign env a, expr_sign env b) with
    | Unsigned, _ | _, Unsigned -> Unsigned
    | Signed, Signed -> Signed)
  | Ast.Call _ -> Signed

let rec lower_expr env (e : Ast.expr) : Ir.value =
  let b = env.builder in
  match e with
  | Ast.Int v -> Ir.Const (Ir.mask32 v)
  | Ast.Ident name -> (
    match List.assoc_opt name env.sema.enum_constants with
    | Some v -> Ir.Const (Ir.mask32 v)
    | None -> (
      match lookup_var env name with
      | Some { var; volatile; _ } -> Ir.Builder.load ~volatile b var
      | None -> fail "unbound identifier %s" name))
  | Ast.Unop (Ast.Neg, e) ->
    Ir.Builder.binop b Ir.Sub (Ir.Const 0) (lower_expr env e)
  | Ast.Unop (Ast.Bnot, e) ->
    Ir.Builder.binop b Ir.Xor (lower_expr env e) (Ir.Const 0xFFFFFFFF)
  | Ast.Unop (Ast.Lnot, e) ->
    Ir.Builder.icmp b Ir.Eq (lower_expr env e) (Ir.Const 0)
  | Ast.Binop ((Ast.Land | Ast.Lor) as op, lhs, rhs) ->
    lower_short_circuit env op lhs rhs
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, lhs, rhs)
    ->
    let sign =
      match (expr_sign env lhs, expr_sign env rhs) with
      | Unsigned, _ | _, Unsigned -> Unsigned
      | Signed, Signed -> Signed
    in
    let l = lower_expr env lhs in
    let r = lower_expr env rhs in
    Ir.Builder.icmp b (icmp_ir op sign) l r
  | Ast.Binop (op, lhs, rhs) ->
    let sign =
      match (expr_sign env lhs, expr_sign env rhs) with
      | Unsigned, _ | _, Unsigned -> Unsigned
      | Signed, Signed -> Signed
    in
    let l = lower_expr env lhs in
    let r = lower_expr env rhs in
    Ir.Builder.binop b (binop_ir op sign) l r
  | Ast.Call (name, args) ->
    let argv = List.map (lower_expr env) args in
    (* Result temp is always materialised; void callees are handled in
       statement position by lower_stmt. *)
    (match Ir.Builder.call b ~dst:true name argv with
    | Some v -> v
    | None -> assert false)

and lower_short_circuit env op lhs rhs =
  let b = env.builder in
  let slot = "$sc" ^ string_of_int (Ir.Builder.fresh_temp b) in
  Ir.Builder.add_local b slot;
  let rhs_label = Ir.Builder.fresh_label b "sc.rhs" in
  let done_label = Ir.Builder.fresh_label b "sc.done" in
  let l = lower_expr env lhs in
  let lbool = Ir.Builder.icmp b Ir.Ne l (Ir.Const 0) in
  Ir.Builder.store b (Ir.Local slot) lbool;
  (match op with
  | Ast.Land -> Ir.Builder.cond_br b lbool ~if_true:rhs_label ~if_false:done_label
  | Ast.Lor -> Ir.Builder.cond_br b lbool ~if_true:done_label ~if_false:rhs_label
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
  | Ast.Bxor | Ast.Shl | Ast.Shr | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt
  | Ast.Ge -> assert false);
  let _ = Ir.Builder.new_block b rhs_label in
  let r = lower_expr env rhs in
  let rbool = Ir.Builder.icmp b Ir.Ne r (Ir.Const 0) in
  Ir.Builder.store b (Ir.Local slot) rbool;
  Ir.Builder.br b done_label;
  let _ = Ir.Builder.new_block b done_label in
  Ir.Builder.load b (Ir.Local slot)

(* Calls in expression statements may target void functions: emit a
   call without a result temp. *)
let lower_expr_stmt env (e : Ast.expr) =
  match e with
  | Ast.Call (name, args) ->
    let argv = List.map (lower_expr env) args in
    ignore (Ir.Builder.call env.builder name argv)
  | Ast.Int _ | Ast.Ident _ | Ast.Unop _ | Ast.Binop _ ->
    ignore (lower_expr env e)

let rec lower_stmt env (s : Ast.stmt) =
  let b = env.builder in
  match s with
  | Ast.Sexpr e -> lower_expr_stmt env e
  | Ast.Sassign (name, e) -> (
    let v = lower_expr env e in
    match lookup_var env name with
    | Some { var; volatile; _ } -> Ir.Builder.store ~volatile b var v
    | None -> fail "assignment to unbound %s" name)
  | Ast.Sdecl { dname; dty; dvolatile; dinit } ->
    Ir.Builder.add_local b dname;
    env.locals <-
      (dname,
       { var = Ir.Local dname; volatile = dvolatile; sign = sign_of_ty dty })
      :: env.locals;
    (match dinit with
    | Some e ->
      let v = lower_expr env e in
      Ir.Builder.store ~volatile:dvolatile b (Ir.Local dname) v
    | None -> ())
  | Ast.Sif (cond, then_, else_) -> (
    let v = lower_expr env cond in
    let then_label = Ir.Builder.fresh_label b "if.then" in
    let done_label = Ir.Builder.fresh_label b "if.end" in
    match else_ with
    | None ->
      Ir.Builder.cond_br b v ~if_true:then_label ~if_false:done_label;
      let _ = Ir.Builder.new_block b then_label in
      lower_block env then_;
      Ir.Builder.br b done_label;
      ignore (Ir.Builder.new_block b done_label)
    | Some else_body ->
      let else_label = Ir.Builder.fresh_label b "if.else" in
      Ir.Builder.cond_br b v ~if_true:then_label ~if_false:else_label;
      let _ = Ir.Builder.new_block b then_label in
      lower_block env then_;
      Ir.Builder.br b done_label;
      let _ = Ir.Builder.new_block b else_label in
      lower_block env else_body;
      Ir.Builder.br b done_label;
      ignore (Ir.Builder.new_block b done_label))
  | Ast.Swhile (cond, body) ->
    let head = Ir.Builder.fresh_label b "while.head" in
    let body_label = Ir.Builder.fresh_label b "while.body" in
    let exit = Ir.Builder.fresh_label b "while.end" in
    Ir.Builder.br b head;
    let _ = Ir.Builder.new_block b head in
    let v = lower_expr env cond in
    Ir.Builder.cond_br b v ~if_true:body_label ~if_false:exit;
    let _ = Ir.Builder.new_block b body_label in
    env.break_labels <- exit :: env.break_labels;
    env.continue_labels <- head :: env.continue_labels;
    lower_block env body;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels <- List.tl env.continue_labels;
    Ir.Builder.br b head;
    ignore (Ir.Builder.new_block b exit)
  | Ast.Sdo_while (body, cond) ->
    let body_label = Ir.Builder.fresh_label b "do.body" in
    let head = Ir.Builder.fresh_label b "do.cond" in
    let exit = Ir.Builder.fresh_label b "do.end" in
    Ir.Builder.br b body_label;
    let _ = Ir.Builder.new_block b body_label in
    env.break_labels <- exit :: env.break_labels;
    env.continue_labels <- head :: env.continue_labels;
    lower_block env body;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels <- List.tl env.continue_labels;
    Ir.Builder.br b head;
    let _ = Ir.Builder.new_block b head in
    let v = lower_expr env cond in
    Ir.Builder.cond_br b v ~if_true:body_label ~if_false:exit;
    ignore (Ir.Builder.new_block b exit)
  | Ast.Sfor (init, cond, step, body) ->
    Option.iter (lower_stmt env) init;
    let head = Ir.Builder.fresh_label b "for.head" in
    let body_label = Ir.Builder.fresh_label b "for.body" in
    let step_label = Ir.Builder.fresh_label b "for.step" in
    let exit = Ir.Builder.fresh_label b "for.end" in
    Ir.Builder.br b head;
    let _ = Ir.Builder.new_block b head in
    (match cond with
    | Some c ->
      let v = lower_expr env c in
      Ir.Builder.cond_br b v ~if_true:body_label ~if_false:exit
    | None -> Ir.Builder.br b body_label);
    let _ = Ir.Builder.new_block b body_label in
    env.break_labels <- exit :: env.break_labels;
    env.continue_labels <- step_label :: env.continue_labels;
    lower_block env body;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels <- List.tl env.continue_labels;
    Ir.Builder.br b step_label;
    let _ = Ir.Builder.new_block b step_label in
    Option.iter (lower_stmt env) step;
    Ir.Builder.br b head;
    ignore (Ir.Builder.new_block b exit)
  | Ast.Sreturn e ->
    let v = Option.map (lower_expr env) e in
    Ir.Builder.ret b v;
    ignore (Ir.Builder.new_block b (Ir.Builder.fresh_label b "dead"))
  | Ast.Sbreak -> (
    match env.break_labels with
    | label :: _ ->
      Ir.Builder.br b label;
      ignore (Ir.Builder.new_block b (Ir.Builder.fresh_label b "dead"))
    | [] -> fail "break outside loop")
  | Ast.Scontinue -> (
    match env.continue_labels with
    | label :: _ ->
      Ir.Builder.br b label;
      ignore (Ir.Builder.new_block b (Ir.Builder.fresh_label b "dead"))
    | [] -> fail "continue outside loop")
  | Ast.Sblock body ->
    let saved = env.locals in
    lower_block env body;
    env.locals <- saved
  | Ast.Sswitch (scrutinee, arms) ->
    let v = lower_expr env scrutinee in
    let end_label = Ir.Builder.fresh_label b "switch.end" in
    let arm_labels =
      List.map (fun _ -> Ir.Builder.fresh_label b "switch.arm") arms
    in
    (* resolve the constant case values *)
    let default = ref end_label in
    let cases = ref [] in
    List.iter2
      (fun { Ast.arm_cases; _ } label ->
        List.iter
          (function
            | None -> default := label
            | Some e -> (
              match Minic.Sema.const_eval env.sema.enum_constants e with
              | Some value -> cases := (Ir.mask32 value, label) :: !cases
              | None -> fail "switch case label is not constant"))
          arm_cases)
      arms arm_labels;
    Ir.Builder.switch b v ~cases:(List.rev !cases) ~default:!default;
    (* arm bodies with C fallthrough; break exits the switch *)
    env.break_labels <- end_label :: env.break_labels;
    List.iteri
      (fun i ({ Ast.arm_body; _ }, label) ->
        let _ = Ir.Builder.new_block b label in
        lower_block env arm_body;
        let next =
          match List.nth_opt arm_labels (i + 1) with
          | Some l -> l
          | None -> end_label
        in
        Ir.Builder.br b next)
      (List.combine arms arm_labels);
    env.break_labels <- List.tl env.break_labels;
    ignore (Ir.Builder.new_block b end_label)

and lower_block env block =
  let saved = env.locals in
  List.iter (lower_stmt env) block;
  env.locals <- saved

let lower_func sema externs globals (f : Ast.func_decl) : Ir.func =
  let params = List.map fst f.fparams in
  let returns_value = f.fret <> Ast.Tvoid in
  let builder = Ir.Builder.create ~fname:f.fname ~params ~returns_value in
  let env =
    { sema; externs; globals;
      locals =
        List.map
          (fun (name, ty) ->
            (name, { var = Ir.Local name; volatile = false; sign = sign_of_ty ty }))
          f.fparams;
      builder;
      break_labels = [];
      continue_labels = [] }
  in
  lower_block env f.fbody;
  (* implicit return when control falls off the end *)
  (match (Ir.Builder.current_block builder).term with
  | Ir.Unreachable ->
    if returns_value then Ir.Builder.ret builder (Some (Ir.Const 0))
    else Ir.Builder.ret builder None
  | Ir.Br _ | Ir.Cond_br _ | Ir.Switch _ | Ir.Ret _ -> ());
  (* dead blocks created after return statements still end in
     Unreachable; give them explicit returns so the verifier's
     conventions hold trivially *)
  List.iter
    (fun (blk : Ir.block) ->
      match blk.term with
      | Ir.Unreachable ->
        blk.term <-
          (if returns_value then Ir.Ret (Some (Ir.Const 0)) else Ir.Ret None)
      | Ir.Br _ | Ir.Cond_br _ | Ir.Switch _ | Ir.Ret _ -> ())
    (Ir.Builder.func builder).blocks;
  Ir.Builder.func builder

let modul ?(externs = []) (sema : Sema.t) : Ir.modul =
  let globals =
    List.map
      (fun (g : Ast.global_decl) ->
        let init =
          match g.ginit with
          | None -> 0
          | Some e -> (
            match Sema.const_eval sema.enum_constants e with
            | Some v -> v
            | None -> fail "global %s: non-constant initializer" g.gname)
        in
        { Ir.gname = g.gname; init; volatile = g.gvolatile; sensitive = false })
      sema.globals
  in
  let global_infos =
    List.map2
      (fun (g : Ast.global_decl) (ig : Ir.global) ->
        (g.gname,
         { var = Ir.Global ig.gname;
           volatile = g.gvolatile;
           sign = sign_of_ty g.gty }))
      sema.globals globals
  in
  let funcs = List.map (lower_func sema externs global_infos) sema.funcs in
  let m = { Ir.globals; funcs; externs = List.map fst externs } in
  (match Ir.Verify.modul m with
  | [] -> ()
  | violations ->
    fail "lowering produced invalid IR: %a"
      Fmt.(list ~sep:(any "; ") Ir.Verify.pp_violation)
      violations);
  m

let modul_of_source ?externs src =
  let ast =
    try Parser.program src with
    | Parser.Error e -> fail "%a" Parser.pp_error e
    | Lexer.Error e -> fail "%a" Lexer.pp_error e
  in
  let sema =
    try Sema.check ?externs ast
    with Sema.Error e -> fail "%a" Sema.pp_error e
  in
  modul ?externs sema
