(** Mini-C AST -> IR lowering, in the -O0 style GlitchResistor assumes:
    every C variable lives in memory, every expression result in a fresh
    write-once temp. No optimisation is performed — exactly the property
    that keeps the defense passes sound (nothing re-orders or merges the
    duplicated checks; the paper compiles with [-Og] for the same
    reason). *)

type error = { message : string }

exception Error of error

val pp_error : error Fmt.t

val modul : ?externs:(string * int) list -> Minic.Sema.t -> Ir.modul
(** Lower a checked program. Calls to functions in [externs] (name,
    arity) become calls to IR externs; enum constants become integer
    literals. Each lowered function is verified before return.
    @raise Error on constructs the backend cannot express. *)

val modul_of_source : ?externs:(string * int) list -> string -> Ir.modul
(** Parse, check, and lower in one step. Lexer/parser/sema errors are
    re-raised as {!Error}. *)
