(** Disassembly listings of linked images — this repository's
    [objdump -d]. Used by the CLI's [compile --dump] and handy when
    debugging codegen or staring at what a glitch actually corrupted. *)

val pp_image : Layout.image Fmt.t
(** Address, raw halfword, and decoded instruction for the whole text
    section, with symbol labels interleaved and data sections
    summarised. *)

val to_string : Layout.image -> string
