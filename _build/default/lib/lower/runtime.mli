(** Hand-written Thumb runtime linked into every image:

    - [__udiv]: unsigned 32-bit shift-subtract divide
      (quotient in [r0], remainder in [r1]);
    - [__idiv] / [__irem]: signed wrappers (the Cortex-M0 has no SDIV);
      division by zero yields 0, matching [Ir.eval_binop];
    - [__flash_commit]: busy-wait modelling the flash-page write latency
      the random-delay defense pays once per boot to persist its PRNG
      seed (Table IV's constant overhead);
    - [crt0]: reset stub that calls [main] and halts at a breakpoint. *)

val runtime_blob : unit -> Codegen.compiled
(** The division and flash stubs as one compiled unit exporting
    [__udiv], [__idiv], [__irem], and [__flash_commit]. *)

val crt0 : unit -> Codegen.compiled
(** Entry stub; exports [__start] and references [main]. *)

val flash_commit_iterations : int
(** Busy-loop iterations in [__flash_commit]; each costs 4 cycles, so
    the stub models a write latency of roughly 4x this many cycles. *)
