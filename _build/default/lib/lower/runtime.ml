(* ~177k cycles, matching the flash seed-update cost the paper measures
   for the random-delay defense (Table IV: 177,849 constant cycles). *)
let flash_commit_iterations = 44444

let runtime_source =
  Printf.sprintf
    {|
__udiv:
  push {r4, lr}
  movs r2, #0          ; remainder
  movs r3, #0          ; quotient
  cmp  r1, #0
  beq  udiv_done       ; divide by zero: q = 0, rem = 0
  movs r4, #32
udiv_loop:
  lsls r3, r3, #1
  lsls r2, r2, #1
  lsls r0, r0, #1
  bcc  udiv_nobit
  adds r2, #1
udiv_nobit:
  cmp  r2, r1
  bcc  udiv_next
  subs r2, r2, r1
  adds r3, #1
udiv_next:
  subs r4, #1
  bne  udiv_loop
udiv_done:
  movs r0, r3
  movs r1, r2
  pop  {r4, pc}

__idiv:
  push {r4, r5, lr}
  movs r4, #0
  cmp  r0, #0
  bge  idiv_a_pos
  negs r0, r0
  movs r4, #1
idiv_a_pos:
  cmp  r1, #0
  bge  idiv_b_pos
  negs r1, r1
  movs r5, #1
  eors r4, r5
idiv_b_pos:
  bl   __udiv
  cmp  r4, #0
  beq  idiv_done
  negs r0, r0
idiv_done:
  pop  {r4, r5, pc}

__irem:
  push {r4, lr}
  movs r4, #0
  cmp  r0, #0
  bge  irem_a_pos
  negs r0, r0
  movs r4, #1
irem_a_pos:
  cmp  r1, #0
  bge  irem_b_pos
  negs r1, r1
irem_b_pos:
  bl   __udiv
  movs r0, r1
  cmp  r4, #0
  beq  irem_done
  negs r0, r0
irem_done:
  pop  {r4, pc}

__flash_commit:
  movs r0, #%d
  lsls r0, r0, #8
  adds r0, #%d
fc_loop:
  subs r0, #1
  bne  fc_loop
  bx   lr
|}
    ((flash_commit_iterations lsr 8) land 0xFF)
    (flash_commit_iterations land 0xFF)

let blob_of_asm name src extra_exports =
  let instrs, labels = Thumb.Asm.assemble_with_labels src in
  let words = Array.of_list (Thumb.Encode.program instrs) in
  let exports =
    List.filter (fun (l, _) -> List.mem l extra_exports) labels
  in
  { Codegen.name; words; exports; bl_relocs = []; word_relocs = [] }

let runtime_blob () =
  blob_of_asm "runtime" runtime_source
    [ "__udiv"; "__idiv"; "__irem"; "__flash_commit" ]

(* The reset stub cannot use plain Asm because the call target is in
   another compilation unit: emit an explicit BL relocation. *)
let crt0 () =
  { Codegen.name = "crt0";
    words = [| 0; 0; Thumb.Encode.instr (Thumb.Instr.Bkpt 0) |];
    exports = [ ("__start", 0) ];
    bl_relocs = [ (0, "main") ];
    word_relocs = [] }
