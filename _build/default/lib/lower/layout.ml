type section = { base : int; size : int }

type image = {
  words : int array;
  text : section;
  data : section;
  bss : section;
  data_init : (int * int) list;
  symbols : (string * int) list;
  global_addrs : (string * int) list;
  entry : int;
  stack_top : int;
}

type error = { message : string }

exception Error of error

let pp_error ppf { message } = Fmt.string ppf message
let fail fmt = Fmt.kstr (fun message -> raise (Error { message })) fmt

let text_base = 0x08000000
let sram_base = 0x20000000
let sram_size = 16 * 1024

let link (m : Ir.modul) =
  let compiled =
    Runtime.crt0 () :: Runtime.runtime_blob ()
    :: List.map (Codegen.func m) m.Ir.funcs
  in
  (* place each unit, 4-byte aligned so literal pools stay aligned *)
  let placed, total_halfwords =
    List.fold_left
      (fun (acc, off) (c : Codegen.compiled) ->
        let off = if off land 1 = 0 then off else off + 1 in
        ((c, off) :: acc, off + Array.length c.words))
      ([], 0) compiled
  in
  let placed = List.rev placed in
  let words = Array.make total_halfwords 0 in
  List.iter
    (fun ((c : Codegen.compiled), off) ->
      Array.blit c.words 0 words off (Array.length c.words))
    placed;
  let symbols =
    List.concat_map
      (fun ((c : Codegen.compiled), off) ->
        List.map
          (fun (sym, hw) -> (sym, text_base + (2 * (off + hw))))
          c.exports)
      placed
  in
  (* globals: .data (non-zero init) first, then .bss *)
  let data_globals, bss_globals =
    List.partition (fun (g : Ir.global) -> g.init <> 0) m.Ir.globals
  in
  let data_base = sram_base in
  let data_size = 4 * List.length data_globals in
  let bss_base = data_base + data_size in
  let bss_size = 4 * List.length bss_globals in
  let global_addrs =
    List.mapi (fun i (g : Ir.global) -> (g.gname, data_base + (4 * i))) data_globals
    @ List.mapi (fun i (g : Ir.global) -> (g.gname, bss_base + (4 * i))) bss_globals
  in
  let data_init =
    List.mapi
      (fun i (g : Ir.global) -> (data_base + (4 * i), Ir.mask32 g.init))
      data_globals
  in
  let resolve_sym sym =
    match List.assoc_opt sym symbols with
    | Some addr -> addr
    | None -> fail "undefined symbol %s" sym
  in
  let resolve_global name =
    if name = "__gpio" then Codegen.gpio_trigger_address
    else
      match List.assoc_opt name global_addrs with
      | Some addr -> addr
      | None -> fail "undefined global %s" name
  in
  (* patch relocations *)
  List.iter
    (fun ((c : Codegen.compiled), base_off) ->
      List.iter
        (fun (hw, sym) ->
          let at = base_off + hw in
          let pc = text_base + (2 * at) in
          let target = resolve_sym sym in
          let off = target - (pc + 4) in
          let hi = off asr 12 in
          if hi < -1024 || hi > 1023 then fail "BL to %s out of range" sym;
          words.(at) <- Thumb.Encode.instr (Thumb.Instr.Bl_hi hi);
          words.(at + 1) <-
            Thumb.Encode.instr (Thumb.Instr.Bl_lo ((off lsr 1) land 0x7FF)))
        c.bl_relocs;
      List.iter
        (fun (hw, name) ->
          let at = base_off + hw in
          let v = resolve_global name in
          words.(at) <- v land 0xFFFF;
          words.(at + 1) <- (v lsr 16) land 0xFFFF)
        c.word_relocs)
    placed;
  { words;
    text = { base = text_base; size = 2 * total_halfwords };
    data = { base = data_base; size = data_size };
    bss = { base = bss_base; size = bss_size };
    data_init;
    symbols;
    global_addrs;
    entry = resolve_sym "__start";
    stack_top = sram_base + sram_size - 16 }

let write_to mem image =
  Array.iteri
    (fun i w ->
      match Machine.Memory.write_u16 mem (image.text.base + (2 * i)) w with
      | Ok () -> ()
      | Error fault ->
        fail "writing text: %a" Machine.Memory.pp_fault fault)
    image.words;
  List.iter
    (fun (addr, v) ->
      match Machine.Memory.write_u32 mem addr v with
      | Ok () -> ()
      | Error fault -> fail "writing data: %a" Machine.Memory.pp_fault fault)
    image.data_init

let load image =
  let mem = Machine.Memory.create () in
  let flash_size =
    let need = image.text.size in
    max 0x1000 ((need + 0xFFF) land lnot 0xFFF)
  in
  Machine.Memory.map mem ~addr:text_base ~size:flash_size;
  Machine.Memory.map mem ~addr:sram_base ~size:sram_size;
  write_to mem image;
  let cpu = Machine.Cpu.create ~sp:image.stack_top ~pc:image.entry () in
  { Machine.Loader.mem;
    cpu;
    layout =
      { Machine.Loader.flash_base = text_base;
        flash_size;
        sram_base;
        sram_size;
        stack_top = image.stack_top } }

let size_report image =
  [ ("text", image.text.size);
    ("data", image.data.size);
    ("bss", image.bss.size);
    ("total", image.text.size + image.data.size + image.bss.size) ]
