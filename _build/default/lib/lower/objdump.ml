let pp_image ppf (image : Layout.image) =
  let by_addr = Hashtbl.create 16 in
  List.iter
    (fun (sym, addr) ->
      Hashtbl.replace by_addr addr
        (sym :: Option.value ~default:[] (Hashtbl.find_opt by_addr addr)))
    image.symbols;
  Fmt.pf ppf "text: 0x%08x, %d bytes@." image.text.base image.text.size;
  Array.iteri
    (fun i w ->
      let addr = image.text.base + (2 * i) in
      (match Hashtbl.find_opt by_addr addr with
      | Some syms ->
        List.iter (fun s -> Fmt.pf ppf "@.%08x <%s>:@." addr s) syms
      | None -> ());
      Fmt.pf ppf "  %08x:  %04x    %a@." addr w Thumb.Instr.pp
        (Thumb.Decode.instr w))
    image.words;
  Fmt.pf ppf "@.data: 0x%08x, %d bytes@." image.data.base image.data.size;
  List.iter
    (fun (name, addr) ->
      if addr >= image.data.base && addr < image.data.base + image.data.size
      then
        let init =
          Option.value ~default:0 (List.assoc_opt addr image.data_init)
        in
        Fmt.pf ppf "  %08x:  %-24s = 0x%08x@." addr name init)
    image.global_addrs;
  Fmt.pf ppf "bss:  0x%08x, %d bytes@." image.bss.base image.bss.size;
  List.iter
    (fun (name, addr) ->
      if addr >= image.bss.base && addr < image.bss.base + image.bss.size then
        Fmt.pf ppf "  %08x:  %s@." addr name)
    image.global_addrs

let to_string image = Fmt.str "%a" pp_image image
