(** Linker and image layout.

    Text is placed at the STM32 flash base, globals in SRAM: initialised
    globals form [.data], zero-initialised ones [.bss] (the section
    split Table V reports). BL and literal-pool relocations are patched
    here; the magic symbol [__gpio] resolves to the GPIO trigger
    register rather than to a RAM cell. *)

type section = { base : int; size : int }

type image = {
  words : int array;  (** the .text halfwords, crt0 first *)
  text : section;
  data : section;
  bss : section;
  data_init : (int * int) list;  (** address, initial word value *)
  symbols : (string * int) list;  (** function symbol -> byte address *)
  global_addrs : (string * int) list;  (** global name -> byte address *)
  entry : int;
  stack_top : int;
}

type error = { message : string }

exception Error of error

val pp_error : error Fmt.t

val text_base : int
val sram_base : int
val sram_size : int

val link : Ir.modul -> image
(** Compile every IR function with {!Codegen}, add the runtime blob and
    crt0, lay out sections, and resolve all relocations.
    @raise Error on undefined symbols or BL targets out of range. *)

val write_to : Machine.Memory.t -> image -> unit
(** Copy .text and .data initialisers into already-mapped memory (the
    board simulator maps flash/SRAM/GPIO itself). *)

val load : image -> Machine.Loader.t
(** Convenience for tests: a plain machine (no GPIO device; stores to
    the trigger register fault) ready to run at [entry]. *)

val size_report : image -> (string * int) list
(** [("text", bytes); ("data", bytes); ("bss", bytes); ("total", ...)] —
    the row format of Table V. *)
