lib/lower/codegen.ml: Array Fmt Hashtbl Ir List Option Printf Thumb
