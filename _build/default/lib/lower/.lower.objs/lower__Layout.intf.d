lib/lower/layout.mli: Fmt Ir Machine
