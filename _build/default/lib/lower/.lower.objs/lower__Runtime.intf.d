lib/lower/runtime.mli: Codegen
