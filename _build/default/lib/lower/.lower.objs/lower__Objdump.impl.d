lib/lower/objdump.ml: Array Fmt Hashtbl Layout List Option Thumb
