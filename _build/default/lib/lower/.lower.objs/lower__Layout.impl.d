lib/lower/layout.ml: Array Codegen Fmt Ir List Machine Runtime Thumb
