lib/lower/ast_lower.mli: Fmt Ir Minic
