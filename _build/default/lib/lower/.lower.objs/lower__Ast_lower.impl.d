lib/lower/ast_lower.ml: Ast Fmt Ir Lexer List Minic Option Parser Sema
