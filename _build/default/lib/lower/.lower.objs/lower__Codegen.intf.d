lib/lower/codegen.mli: Fmt Ir
