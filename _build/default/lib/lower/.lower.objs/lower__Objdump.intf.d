lib/lower/objdump.mli: Fmt Layout
