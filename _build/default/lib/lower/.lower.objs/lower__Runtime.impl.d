lib/lower/runtime.ml: Array Codegen List Printf Thumb
