(** IR -> Thumb-16 code generation, -O0 style.

    Every local and temp gets a 4-byte stack slot; values are shuttled
    through [r0]-[r3]; 32-bit constants and global addresses come from a
    per-function PC-relative literal pool (the [LDR R3, =0xD3B9AEC6]
    idiom seen in the paper's Table I(c)). Calls follow a simplified
    AAPCS: up to four arguments in [r0]-[r3], result in [r0].

    Intrinsic callees expanded inline rather than called:
    - [__halt()] -> [BKPT #0] (end of program);
    - [__trigger_high()] / [__trigger_low()] -> GPIO store, the paper's
      perfect trigger;
    - [Sdiv]/[Srem] lower to calls to the runtime's [__idiv]/[__irem]
      (the Cortex-M0 has no divide instruction). *)

type compiled = {
  name : string;
  words : int array;  (** halfwords, literal pool included *)
  exports : (string * int) list;  (** symbol -> halfword offset *)
  bl_relocs : (int * string) list;
      (** halfword index of a [Bl_hi]/[Bl_lo] pair to patch *)
  word_relocs : (int * string) list;
      (** halfword index of a 32-bit literal holding a global's address *)
}

type error = { func : string; message : string }

exception Error of error

val pp_error : error Fmt.t

val gpio_trigger_address : int
(** [0x48000028], the GPIO data register the paper's trigger writes. *)

val intrinsics : string list
(** Extern names expanded inline ([__halt], [__trigger_high],
    [__trigger_low]). *)

val func : Ir.modul -> Ir.func -> compiled
(** @raise Error when a function exceeds backend limits (too many stack
    slots, branch out of range, more than four call arguments). *)
