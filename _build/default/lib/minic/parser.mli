(** Recursive-descent parser for Mini-C.

    Grammar (roughly): a program is a sequence of [enum] declarations,
    global variable declarations, and function definitions. Statements
    cover declarations, assignment, [if]/[else], [while], [do-while],
    [for], [return], [break], [continue], blocks, and expression
    statements. Expressions have C precedence, including short-circuit
    [&&] and [||]. *)

type error = { line : int; message : string }

exception Error of error

val pp_error : error Fmt.t

val program : string -> Ast.program
(** @raise Error on syntax errors (lexer errors are converted). *)

val expr : string -> Ast.expr
(** Parse a single expression (testing convenience). *)
