open Ast

let unop_symbol = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"

(* Fully parenthesised: simple and always re-parses to the same tree. *)
let rec pp_expr ppf = function
  | Int v -> Fmt.pf ppf "%d" v
  | Ident name -> Fmt.string ppf name
  | Unop (op, e) -> Fmt.pf ppf "%s(%a)" (unop_symbol op) pp_expr e
  | Binop (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp_expr) args

let pp_decl ppf { dname; dty; dvolatile; dinit } =
  Fmt.pf ppf "%s%s %s%a;"
    (if dvolatile then "volatile " else "")
    (ty_name dty) dname
    Fmt.(option (fun ppf e -> pf ppf " = %a" pp_expr e))
    dinit

let rec pp_stmt ppf = function
  | Sexpr e -> Fmt.pf ppf "%a;" pp_expr e
  | Sassign (name, e) -> Fmt.pf ppf "%s = %a;" name pp_expr e
  | Sdecl d -> pp_decl ppf d
  | Sif (cond, then_, else_) ->
    Fmt.pf ppf "if (%a) %a%a" pp_expr cond pp_block then_
      Fmt.(option (fun ppf b -> pf ppf " else %a" pp_block b))
      else_
  | Swhile (cond, body) -> Fmt.pf ppf "while (%a) %a" pp_expr cond pp_block body
  | Sdo_while (body, cond) ->
    Fmt.pf ppf "do %a while (%a);" pp_block body pp_expr cond
  | Sfor (init, cond, step, body) ->
    let pp_simple ppf = function
      | Sexpr e -> pp_expr ppf e
      | Sassign (name, e) -> Fmt.pf ppf "%s = %a" name pp_expr e
      | Sdecl { dname; dty; dvolatile; dinit } ->
        Fmt.pf ppf "%s%s %s%a"
          (if dvolatile then "volatile " else "")
          (ty_name dty) dname
          Fmt.(option (fun ppf e -> pf ppf " = %a" pp_expr e))
          dinit
      | Sif _ | Swhile _ | Sdo_while _ | Sfor _ | Sreturn _ | Sbreak
      | Scontinue | Sblock _ | Sswitch _ -> Fmt.string ppf "/* unsupported */"
    in
    Fmt.pf ppf "for (%a; %a; %a) %a"
      Fmt.(option pp_simple)
      init
      Fmt.(option pp_expr)
      cond
      Fmt.(option pp_simple)
      step pp_block body
  | Sreturn None -> Fmt.string ppf "return;"
  | Sreturn (Some e) -> Fmt.pf ppf "return %a;" pp_expr e
  | Sbreak -> Fmt.string ppf "break;"
  | Scontinue -> Fmt.string ppf "continue;"
  | Sblock b -> pp_block ppf b
  | Sswitch (scrutinee, arms) ->
    let pp_label ppf = function
      | Some v -> Fmt.pf ppf "case %a:" pp_expr v
      | None -> Fmt.string ppf "default:"
    in
    let pp_arm ppf { arm_cases; arm_body } =
      Fmt.pf ppf "@[<v>%a@;<1 2>@[<v>%a@]@]"
        Fmt.(list ~sep:sp pp_label)
        arm_cases
        Fmt.(list ~sep:cut pp_stmt)
        arm_body
    in
    Fmt.pf ppf "switch (%a) {@;<1 2>@[<v>%a@]@ }" pp_expr scrutinee
      Fmt.(list ~sep:cut pp_arm)
      arms

and pp_block ppf block =
  Fmt.pf ppf "{@;<1 2>@[<v>%a@]@ }" Fmt.(list ~sep:cut pp_stmt) block

let pp_item ppf = function
  | Ienum { ename; members } ->
    let pp_member ppf (name, init) =
      Fmt.pf ppf "%s%a" name
        Fmt.(option (fun ppf e -> pf ppf " = %a" pp_expr e))
        init
    in
    Fmt.pf ppf "@[<v>enum %s {@;<1 2>@[<v>%a@]@ };@]" ename
      Fmt.(list ~sep:(any ",@ ") pp_member)
      members
  | Iglobal { gname; gty; gvolatile; ginit } ->
    Fmt.pf ppf "%s%s %s%a;"
      (if gvolatile then "volatile " else "")
      (ty_name gty) gname
      Fmt.(option (fun ppf e -> pf ppf " = %a" pp_expr e))
      ginit
  | Ifunc { fname; fret; fparams; fbody } ->
    let pp_param ppf (name, ty) = Fmt.pf ppf "%s %s" (ty_name ty) name in
    Fmt.pf ppf "@[<v>%s %s(%a) %a@]" (ty_name fret) fname
      Fmt.(list ~sep:(any ", ") pp_param)
      fparams pp_block fbody

let pp_program ppf prog =
  Fmt.pf ppf "@[<v>%a@]@." Fmt.(list ~sep:(any "@ @ ") pp_item) prog

let to_string prog = Fmt.str "%a" pp_program prog
