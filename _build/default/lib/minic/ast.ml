type ty = Tint | Tuint | Tvoid | Tenum of string

type unop = Neg | Lnot | Bnot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type expr =
  | Int of int
  | Ident of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Sexpr of expr
  | Sassign of string * expr
  | Sdecl of decl_stmt
  | Sif of expr * block * block option
  | Swhile of expr * block
  | Sdo_while of block * expr
  | Sfor of stmt option * expr option * stmt option * block
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of block
  | Sswitch of expr * switch_arm list

and decl_stmt = { dname : string; dty : ty; dvolatile : bool; dinit : expr option }
and switch_arm = { arm_cases : expr option list; arm_body : block }
and block = stmt list

type enum_decl = { ename : string; members : (string * expr option) list }
type global_decl = { gname : string; gty : ty; gvolatile : bool; ginit : expr option }

type func_decl = {
  fname : string;
  fret : ty;
  fparams : (string * ty) list;
  fbody : block;
}

type item = Ienum of enum_decl | Iglobal of global_decl | Ifunc of func_decl
type program = item list

let equal_expr (a : expr) (b : expr) = a = b
let equal_program (a : program) (b : program) = a = b

let ty_name = function
  | Tint -> "int"
  | Tuint -> "unsigned"
  | Tvoid -> "void"
  | Tenum name -> "enum " ^ name
