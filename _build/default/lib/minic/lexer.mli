(** Hand-written lexer for Mini-C. Supports decimal and [0x] hex
    literals, [//] and [/* */] comments, and the full operator set of
    {!Ast}. *)

type token =
  | Tint_lit of int
  | Tident of string
  | Tkeyword of string
      (** one of: int, unsigned, void, enum, volatile, if, else, while,
          do, for, return, break, continue, switch, case, default *)
  | Tpunct of string
  | Teof

val token_to_string : token -> string

type error = { line : int; message : string }

exception Error of error

val pp_error : error Fmt.t

val tokenize : string -> (token * int) list
(** Token stream with 1-based line numbers; always ends with [Teof].
    @raise Error on malformed input. *)
