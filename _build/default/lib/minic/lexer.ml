type token =
  | Tint_lit of int
  | Tident of string
  | Tkeyword of string
  | Tpunct of string
  | Teof

let token_to_string = function
  | Tint_lit v -> string_of_int v
  | Tident s -> s
  | Tkeyword s -> s
  | Tpunct s -> s
  | Teof -> "<eof>"

type error = { line : int; message : string }

exception Error of error

let pp_error ppf { line; message } = Fmt.pf ppf "line %d: %s" line message

let fail line fmt = Fmt.kstr (fun message -> raise (Error { line; message })) fmt

let keywords =
  [ "int"; "unsigned"; "void"; "enum"; "volatile"; "if"; "else"; "while";
    "do"; "for"; "return"; "break"; "continue"; "switch"; "case"; "default" ]

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

(* Two-character operators must be matched before their prefixes. *)
let two_char_puncts = [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>" ]
let one_char_puncts = "(){};:,=<>+-*/%&|^~!"

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let emit tok = out := (tok, !line) :: !out in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      let start_line = !line in
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\n' then incr line;
        if src.[!pos] = '*' && peek 1 = Some '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then fail start_line "unterminated comment"
    end
    else if is_digit c then begin
      let start = !pos in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        pos := !pos + 2;
        while !pos < n && is_hex src.[!pos] do
          incr pos
        done;
        if !pos = start + 2 then fail !line "empty hex literal"
      end
      else
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
      let text = String.sub src start (!pos - start) in
      (match int_of_string_opt text with
      | Some v -> emit (Tint_lit (v land 0xFFFFFFFF))
      | None -> fail !line "bad integer literal %S" text);
      if !pos < n && is_ident_start src.[!pos] then
        fail !line "identifier character after number"
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      if List.mem text keywords then emit (Tkeyword text) else emit (Tident text)
    end
    else begin
      let two =
        if !pos + 1 < n then Some (String.sub src !pos 2) else None
      in
      match two with
      | Some t when List.mem t two_char_puncts ->
        emit (Tpunct t);
        pos := !pos + 2
      | Some _ | None ->
        if String.contains one_char_puncts c then begin
          emit (Tpunct (String.make 1 c));
          incr pos
        end
        else fail !line "unexpected character %C" c
    end
  done;
  emit Teof;
  List.rev !out
