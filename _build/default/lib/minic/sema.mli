(** Semantic analysis for Mini-C: name resolution, enum constant
    evaluation, arity checking, and the classification the ENUM Rewriter
    needs ("are all members of this declaration uninitialized?"). *)

type enum_info = {
  decl : Ast.enum_decl;
  values : (string * int) list;  (** member -> resolved value *)
  fully_uninitialized : bool;
      (** true iff no member had an explicit initializer — the only
          declarations the ENUM Rewriter may rewrite (Section VI-A). *)
}

type t = {
  prog : Ast.program;
  enums : enum_info list;
  globals : Ast.global_decl list;
  funcs : Ast.func_decl list;
  enum_constants : (string * int) list;  (** all members, flattened *)
}

type error = { message : string }

exception Error of error

val pp_error : error Fmt.t

val check : ?externs:(string * int) list -> Ast.program -> t
(** [externs] declares runtime-provided functions as (name, arity)
    pairs, e.g. the GlitchResistor detection hook.
    @raise Error on duplicate/undefined names, bad call arity,
    [break]/[continue] outside loops, or non-constant initializers. *)

val const_eval : (string * int) list -> Ast.expr -> int option
(** Evaluate a constant expression given enum-constant bindings. 32-bit
    wrap-around semantics; [None] if the expression reads a variable or
    calls a function. *)

val enum_of_member : t -> string -> enum_info option
(** Which enum declaration defines the given member name. *)
