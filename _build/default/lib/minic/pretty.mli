(** Source printer for Mini-C. [Parser.program (to_string p)] yields a
    program equal to [p] (up to parenthesisation, which does not appear
    in the AST) — the property the ENUM Rewriter relies on, since it is
    a source-to-source tool. *)

val pp_expr : Ast.expr Fmt.t
val pp_stmt : Ast.stmt Fmt.t
val pp_item : Ast.item Fmt.t
val pp_program : Ast.program Fmt.t
val to_string : Ast.program -> string
