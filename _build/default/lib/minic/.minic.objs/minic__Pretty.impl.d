lib/minic/pretty.ml: Ast Fmt
