lib/minic/parser.mli: Ast Fmt
