lib/minic/sema.ml: Ast Fmt Hashtbl List Option
