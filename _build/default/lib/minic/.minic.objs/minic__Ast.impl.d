lib/minic/ast.ml:
