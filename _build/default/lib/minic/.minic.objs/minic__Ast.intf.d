lib/minic/ast.mli:
