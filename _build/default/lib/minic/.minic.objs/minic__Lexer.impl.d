lib/minic/lexer.ml: Fmt List String
