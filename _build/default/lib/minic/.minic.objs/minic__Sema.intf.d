lib/minic/sema.mli: Ast Fmt
