type enum_info = {
  decl : Ast.enum_decl;
  values : (string * int) list;
  fully_uninitialized : bool;
}

type t = {
  prog : Ast.program;
  enums : enum_info list;
  globals : Ast.global_decl list;
  funcs : Ast.func_decl list;
  enum_constants : (string * int) list;
}

type error = { message : string }

exception Error of error

let pp_error ppf { message } = Fmt.string ppf message
let fail fmt = Fmt.kstr (fun message -> raise (Error { message })) fmt

let mask32 v = v land 0xFFFFFFFF

let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let rec const_eval env (e : Ast.expr) =
  match e with
  | Ast.Int v -> Some (mask32 v)
  | Ast.Ident name -> List.assoc_opt name env
  | Ast.Unop (op, e) -> (
    match const_eval env e with
    | None -> None
    | Some v -> (
      match op with
      | Ast.Neg -> Some (mask32 (-v))
      | Ast.Lnot -> Some (if v = 0 then 1 else 0)
      | Ast.Bnot -> Some (mask32 (lnot v))))
  | Ast.Binop (op, a, b) -> (
    match (const_eval env a, const_eval env b) with
    | Some a, Some b -> (
      let bool_of p = if p then 1 else 0 in
      match op with
      | Ast.Add -> Some (mask32 (a + b))
      | Ast.Sub -> Some (mask32 (a - b))
      | Ast.Mul -> Some (mask32 (a * b))
      | Ast.Div -> if b = 0 then None else Some (mask32 (to_signed a / to_signed b))
      | Ast.Mod -> if b = 0 then None else Some (mask32 (to_signed a mod to_signed b))
      | Ast.Band -> Some (a land b)
      | Ast.Bor -> Some (a lor b)
      | Ast.Bxor -> Some (a lxor b)
      | Ast.Shl -> Some (mask32 (a lsl (b land 31)))
      | Ast.Shr -> Some (a lsr (b land 31))
      | Ast.Eq -> Some (bool_of (a = b))
      | Ast.Ne -> Some (bool_of (a <> b))
      | Ast.Lt -> Some (bool_of (to_signed a < to_signed b))
      | Ast.Le -> Some (bool_of (to_signed a <= to_signed b))
      | Ast.Gt -> Some (bool_of (to_signed a > to_signed b))
      | Ast.Ge -> Some (bool_of (to_signed a >= to_signed b))
      | Ast.Land -> Some (bool_of (a <> 0 && b <> 0))
      | Ast.Lor -> Some (bool_of (a <> 0 || b <> 0)))
    | None, _ | _, None -> None)
  | Ast.Call _ -> None

(* Resolve an enum declaration's member values with C's sequential
   default: an uninitialized member is previous + 1, starting at 0. *)
let resolve_enum env (decl : Ast.enum_decl) =
  let _, values, all_default =
    List.fold_left
      (fun (next, acc, all_default) (name, init) ->
        match init with
        | None -> (next + 1, (name, mask32 next) :: acc, all_default)
        | Some e -> (
          match const_eval (acc @ env) e with
          | Some v -> (to_signed v + 1, (name, v) :: acc, false)
          | None -> fail "enum %s: initializer of %s is not constant" decl.ename name))
      (0, [], true) decl.members
  in
  { decl; values = List.rev values; fully_uninitialized = all_default }

type scope = {
  enums : enum_info list;
  enum_env : (string * int) list;
  global_names : string list;
  func_sigs : (string * int) list;  (* name -> arity *)
}

let rec check_expr scope locals (e : Ast.expr) =
  match e with
  | Ast.Int _ -> ()
  | Ast.Ident name ->
    if
      (not (List.mem name locals))
      && (not (List.mem name scope.global_names))
      && not (List.mem_assoc name scope.enum_env)
    then fail "undefined identifier %s" name
  | Ast.Unop (_, e) -> check_expr scope locals e
  | Ast.Binop (_, a, b) ->
    check_expr scope locals a;
    check_expr scope locals b
  | Ast.Call (f, args) -> (
    List.iter (check_expr scope locals) args;
    match List.assoc_opt f scope.func_sigs with
    | None -> fail "call to undefined function %s" f
    | Some arity ->
      if arity <> List.length args then
        fail "%s expects %d arguments, got %d" f arity (List.length args))

let rec check_stmt scope ~in_loop ?(in_switch = false) locals (s : Ast.stmt) =
  ignore in_switch;
  match s with
  | Ast.Sexpr e ->
    check_expr scope locals e;
    locals
  | Ast.Sassign (name, e) ->
    if
      (not (List.mem name locals)) && not (List.mem name scope.global_names)
    then fail "assignment to undefined variable %s" name;
    if List.mem_assoc name scope.enum_env then
      fail "assignment to enum constant %s" name;
    check_expr scope locals e;
    locals
  | Ast.Sdecl { dname; dinit; _ } ->
    (match dinit with Some e -> check_expr scope locals e | None -> ());
    if List.mem dname locals then fail "redeclaration of %s" dname;
    dname :: locals
  | Ast.Sif (cond, then_, else_) ->
    check_expr scope locals cond;
    ignore (check_block scope ~in_loop locals then_);
    Option.iter (fun b -> ignore (check_block scope ~in_loop locals b)) else_;
    locals
  | Ast.Swhile (cond, body) ->
    check_expr scope locals cond;
    ignore (check_block scope ~in_loop:true locals body);
    locals
  | Ast.Sdo_while (body, cond) ->
    ignore (check_block scope ~in_loop:true locals body);
    check_expr scope locals cond;
    locals
  | Ast.Sfor (init, cond, step, body) ->
    let locals' =
      match init with
      | Some s -> check_stmt scope ~in_loop locals s
      | None -> locals
    in
    Option.iter (check_expr scope locals') cond;
    Option.iter (fun s -> ignore (check_stmt scope ~in_loop:true locals' s)) step;
    ignore (check_block scope ~in_loop:true locals' body);
    locals
  | Ast.Sreturn e ->
    Option.iter (check_expr scope locals) e;
    locals
  | Ast.Sbreak ->
    if not (in_loop || in_switch) then fail "break outside a loop or switch";
    locals
  | Ast.Scontinue ->
    if not in_loop then fail "continue outside a loop";
    locals
  | Ast.Sblock b ->
    ignore (check_block scope ~in_loop locals b);
    locals
  | Ast.Sswitch (scrutinee, arms) ->
    check_expr scope locals scrutinee;
    let seen = Hashtbl.create 8 in
    List.iter
      (fun { Ast.arm_cases; arm_body } ->
        List.iter
          (function
            | None ->
              if Hashtbl.mem seen `Default then fail "duplicate default label";
              Hashtbl.replace seen `Default ()
            | Some label -> (
              match const_eval scope.enum_env label with
              | None -> fail "case label is not a constant expression"
              | Some v ->
                if Hashtbl.mem seen (`Case v) then
                  fail "duplicate case label %d" (to_signed v);
                Hashtbl.replace seen (`Case v) ()))
          arm_cases;
        ignore (check_block scope ~in_loop ~in_switch:true locals arm_body))
      arms;
    locals

and check_block scope ~in_loop ?in_switch locals block =
  List.fold_left
    (fun locals s -> check_stmt scope ~in_loop ?in_switch locals s)
    locals block

let check ?(externs = []) (prog : Ast.program) =
  let enums =
    List.fold_left
      (fun acc item ->
        match item with
        | Ast.Ienum decl ->
          if List.exists (fun e -> e.decl.Ast.ename = decl.Ast.ename) acc then
            fail "duplicate enum %s" decl.Ast.ename;
          resolve_enum (List.concat_map (fun e -> e.values) acc) decl :: acc
        | Ast.Iglobal _ | Ast.Ifunc _ -> acc)
      [] prog
    |> List.rev
  in
  let enum_env = List.concat_map (fun e -> e.values) enums in
  (match
     List.fold_left
       (fun seen (name, _) ->
         if List.mem name seen then fail "duplicate enum member %s" name
         else name :: seen)
       [] enum_env
   with
  | _ -> ());
  let globals =
    List.filter_map
      (function Ast.Iglobal g -> Some g | Ast.Ienum _ | Ast.Ifunc _ -> None)
      prog
  in
  let funcs =
    List.filter_map
      (function Ast.Ifunc f -> Some f | Ast.Ienum _ | Ast.Iglobal _ -> None)
      prog
  in
  let global_names = List.map (fun (g : Ast.global_decl) -> g.gname) globals in
  (match
     List.fold_left
       (fun seen name ->
         if List.mem name seen then fail "duplicate global %s" name
         else name :: seen)
       [] global_names
   with
  | _ -> ());
  let func_sigs =
    externs
    @ List.map (fun (f : Ast.func_decl) -> (f.fname, List.length f.fparams)) funcs
  in
  (match
     List.fold_left
       (fun seen (name, _) ->
         if List.mem name seen then fail "duplicate function %s" name
         else name :: seen)
       [] func_sigs
   with
  | _ -> ());
  let scope = { enums; enum_env; global_names; func_sigs } in
  (* Global initializers must be compile-time constants. *)
  List.iter
    (fun (g : Ast.global_decl) ->
      match g.ginit with
      | None -> ()
      | Some e -> (
        match const_eval enum_env e with
        | Some _ -> ()
        | None -> fail "global %s: initializer is not constant" g.gname))
    globals;
  List.iter
    (fun (f : Ast.func_decl) ->
      let params = List.map fst f.fparams in
      ignore (check_block scope ~in_loop:false params f.fbody))
    funcs;
  { prog; enums; globals; funcs; enum_constants = enum_env }

let enum_of_member (t : t) member =
  List.find_opt (fun e -> List.mem_assoc member e.values) t.enums
