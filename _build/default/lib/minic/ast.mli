(** Abstract syntax for Mini-C, the C subset the firmware under test is
    written in. It covers what the paper's evaluation needs: 32-bit
    integer arithmetic, [volatile] globals and locals, [enum]
    declarations (the ENUM Rewriter's subject), functions, [if] /
    [while] / [for] control flow, and calls. *)

type ty =
  | Tint
  | Tuint
  | Tvoid
  | Tenum of string  (** by declaration name *)

type unop = Neg | Lnot  (** [!] *) | Bnot  (** [~] *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuiting *)

type expr =
  | Int of int  (** literal, 32-bit two's-complement *)
  | Ident of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Sexpr of expr  (** expression statement (typically a call) *)
  | Sassign of string * expr
  | Sdecl of decl_stmt
  | Sif of expr * block * block option
  | Swhile of expr * block
  | Sdo_while of block * expr
  | Sfor of stmt option * expr option * stmt option * block
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of block
  | Sswitch of expr * switch_arm list
      (** C switch with fallthrough: each arm's labels are followed by
          its statements; control falls into the next arm unless the
          body breaks. *)

and decl_stmt = { dname : string; dty : ty; dvolatile : bool; dinit : expr option }

and switch_arm = {
  arm_cases : expr option list;
      (** constant case labels; [None] is [default:] *)
  arm_body : block;
}

and block = stmt list

type enum_decl = {
  ename : string;
  members : (string * expr option) list;
      (** [None] means uninitialized, i.e. C's sequential default — the
          only form the ENUM Rewriter may touch. *)
}

type global_decl = {
  gname : string;
  gty : ty;
  gvolatile : bool;
  ginit : expr option;
}

type func_decl = {
  fname : string;
  fret : ty;
  fparams : (string * ty) list;
  fbody : block;
}

type item =
  | Ienum of enum_decl
  | Iglobal of global_decl
  | Ifunc of func_decl

type program = item list

val equal_expr : expr -> expr -> bool
val equal_program : program -> program -> bool

val ty_name : ty -> string
