lib/reedsolomon/diversify.ml: Array List Rs
