lib/reedsolomon/diversify.mli:
