lib/reedsolomon/gf256.ml: Array
