lib/reedsolomon/gfpoly.ml: Array Fmt Gf256
