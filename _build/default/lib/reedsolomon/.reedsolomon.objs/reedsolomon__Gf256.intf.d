lib/reedsolomon/gf256.mli:
