lib/reedsolomon/rs.ml: Array Gf256 Gfpoly List
