lib/reedsolomon/rs.mli:
