lib/reedsolomon/gfpoly.mli: Fmt
