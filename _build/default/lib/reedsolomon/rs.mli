(** Reed-Solomon codec over GF(2^8) (the substitute for the
    [mersinvald/Reed-Solomon] C++ codec the paper uses).

    A codeword with [ecc_len] parity symbols corrects up to
    [ecc_len / 2] corrupted symbols. Symbols are bytes; messages and
    codewords are int arrays with values in [0, 255]. *)

type error = [ `Too_many_errors | `Invalid_length ]

val encode : ecc_len:int -> int array -> int array
(** [encode ~ecc_len msg] appends [ecc_len] parity bytes.
    @raise Invalid_argument if the codeword would exceed 255 symbols or
    [ecc_len < 1]. *)

val parity : ecc_len:int -> int array -> int array
(** Just the parity bytes of {!encode}. *)

val syndromes : ecc_len:int -> int array -> int array
(** All-zero iff the codeword is valid. *)

val is_valid : ecc_len:int -> int array -> bool

val decode : ecc_len:int -> int array -> (int array, error) result
(** Correct up to [ecc_len / 2] symbol errors in place of a received
    codeword (message ++ parity); returns the corrected codeword. *)

val decode_message : ecc_len:int -> int array -> (int array, error) result
(** {!decode} and strip the parity, returning only the message bytes. *)
