let value ~width_bytes ordinal =
  if width_bytes < 1 || width_bytes > 8 then
    invalid_arg "Diversify.value: width_bytes out of [1, 8]";
  if ordinal < 0 || ordinal > 0xFFFF then
    invalid_arg "Diversify.value: ordinal out of [0, 65535]";
  let msg = [| (ordinal lsr 8) land 0xFF; ordinal land 0xFF |] in
  let parity = Rs.parity ~ecc_len:width_bytes msg in
  Array.fold_left (fun acc byte -> (acc lsl 8) lor byte) 0 parity

let values ?(width_bytes = 4) ~count () =
  List.init count (fun i -> value ~width_bytes (i + 1))

let hamming a b =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0 (a lxor b)

let min_pairwise_hamming vs =
  let rec go acc = function
    | [] -> acc
    | v :: rest ->
      let acc =
        List.fold_left (fun acc w -> min acc (hamming v w)) acc rest
      in
      go acc rest
  in
  go max_int vs
