type error = [ `Too_many_errors | `Invalid_length ]

let check_lengths ~ecc_len total =
  if ecc_len < 1 then invalid_arg "Rs: ecc_len must be positive";
  if total > 255 then invalid_arg "Rs: codeword longer than 255 symbols"

let parity ~ecc_len msg =
  check_lengths ~ecc_len (Array.length msg + ecc_len);
  let gen = Gfpoly.generator ecc_len in
  (* msg(x) * x^ecc mod gen *)
  let shifted = Array.append msg (Array.make ecc_len 0) in
  let _, rem = Gfpoly.divmod shifted gen in
  let rem = Gfpoly.normalize rem in
  (* left-pad the remainder to exactly ecc_len symbols *)
  let out = Array.make ecc_len 0 in
  let lr = Array.length rem in
  if not (Gfpoly.is_zero rem) then
    Array.blit rem 0 out (ecc_len - lr) lr;
  out

let encode ~ecc_len msg = Array.append msg (parity ~ecc_len msg)

let syndromes ~ecc_len code =
  Array.init ecc_len (fun i -> Gfpoly.eval code (Gf256.exp i))

let is_valid ~ecc_len code =
  Array.for_all (fun s -> s = 0) (syndromes ~ecc_len code)

(* Berlekamp-Massey: error locator sigma as a lowest-degree-first array
   with sigma.(0) = 1. Returns (sigma, nu) where nu is the number of
   errors located. *)
let berlekamp_massey synd =
  let nsym = Array.length synd in
  let c = Array.make (nsym + 1) 0 and b = Array.make (nsym + 1) 0 in
  c.(0) <- 1;
  b.(0) <- 1;
  let l = ref 0 and m = ref 1 and bb = ref 1 in
  for n = 0 to nsym - 1 do
    let d = ref synd.(n) in
    for k = 1 to !l do
      d := Gf256.add !d (Gf256.mul c.(k) synd.(n - k))
    done;
    if !d = 0 then incr m
    else if 2 * !l <= n then begin
      let t = Array.copy c in
      let coef = Gf256.div !d !bb in
      for k = 0 to nsym - !m do
        c.(k + !m) <- Gf256.add c.(k + !m) (Gf256.mul coef b.(k))
      done;
      l := n + 1 - !l;
      Array.blit t 0 b 0 (Array.length t);
      bb := !d;
      m := 1
    end
    else begin
      let coef = Gf256.div !d !bb in
      for k = 0 to nsym - !m do
        c.(k + !m) <- Gf256.add c.(k + !m) (Gf256.mul coef b.(k))
      done;
      incr m
    end
  done;
  (Array.sub c 0 (!l + 1), !l)

(* Evaluate a lowest-first polynomial. *)
let eval_low p x =
  let acc = ref 0 in
  for k = Array.length p - 1 downto 0 do
    acc := Gf256.add (Gf256.mul !acc x) p.(k)
  done;
  !acc

let decode ~ecc_len code =
  check_lengths ~ecc_len (Array.length code);
  if Array.length code <= ecc_len then Error `Invalid_length
  else begin
    let n = Array.length code in
    let synd = syndromes ~ecc_len code in
    if Array.for_all (fun s -> s = 0) synd then Ok (Array.copy code)
    else begin
      let sigma, nu = berlekamp_massey synd in
      if 2 * nu > ecc_len then Error `Too_many_errors
      else begin
        (* Chien search over exponents: error at exponent e iff
           sigma(alpha^(-e)) = 0; codeword position = n - 1 - e. *)
        let positions = ref [] in
        for e = 0 to n - 1 do
          let x_inv = Gf256.exp (255 - (e mod 255)) in
          if eval_low sigma x_inv = 0 then positions := e :: !positions
        done;
        if List.length !positions <> nu then Error `Too_many_errors
        else begin
          (* Forney: omega = synd * sigma mod x^ecc (lowest-first). *)
          let omega = Array.make ecc_len 0 in
          for i = 0 to ecc_len - 1 do
            for k = 0 to min i (Array.length sigma - 1) do
              omega.(i) <- Gf256.add omega.(i) (Gf256.mul sigma.(k) synd.(i - k))
            done
          done;
          (* Formal derivative of sigma: odd-degree terms shift down. *)
          let sigma' =
            Array.init
              (max 1 (Array.length sigma - 1))
              (fun k -> if k land 1 = 0 && k + 1 < Array.length sigma then sigma.(k + 1) else 0)
          in
          let out = Array.copy code in
          let ok = ref true in
          List.iter
            (fun e ->
              let x = Gf256.exp e in
              let x_inv = Gf256.exp (255 - (e mod 255)) in
              let denom = eval_low sigma' x_inv in
              if denom = 0 then ok := false
              else begin
                let magnitude =
                  Gf256.mul x (Gf256.div (eval_low omega x_inv) denom)
                in
                let pos = n - 1 - e in
                out.(pos) <- Gf256.sub out.(pos) magnitude
              end)
            !positions;
          if (not !ok) || not (is_valid ~ecc_len out) then Error `Too_many_errors
          else Ok out
        end
      end
    end
  end

let decode_message ~ecc_len code =
  match decode ~ecc_len code with
  | Ok corrected ->
    Ok (Array.sub corrected 0 (Array.length corrected - ecc_len))
  | Error _ as e -> e
