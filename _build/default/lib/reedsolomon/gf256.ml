let primitive_poly = 0x11D

(* exp_table.(i) = alpha^i for i in [0, 511] so products of logs never
   need an explicit modulo; log_table.(exp_table.(i)) = i mod 255. *)
let exp_table, log_table =
  let exp_table = Array.make 512 0 in
  let log_table = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor primitive_poly
  done;
  for i = 255 to 511 do
    exp_table.(i) <- exp_table.(i - 255)
  done;
  (exp_table, log_table)

let add = ( lxor )
let sub = ( lxor )

let mul a b =
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) + 255 - log_table.(b))

let inv a = div 1 a

let pow x n =
  if n < 0 then invalid_arg "Gf256.pow: negative exponent"
  else if n = 0 then 1
  else if x = 0 then 0
  else exp_table.(log_table.(x) * n mod 255)

let exp i =
  if i < 0 then invalid_arg "Gf256.exp: negative exponent"
  else exp_table.(i mod 255)

let log a = if a = 0 then invalid_arg "Gf256.log: log of zero" else log_table.(a)
