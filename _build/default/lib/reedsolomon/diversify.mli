(** Constant diversification (paper Section VI-A): generate sets of
    integer constants with a large minimum pairwise Hamming distance, to
    replace sequential ENUM values and trivial return codes.

    Following the paper's configuration, each value is the Reed-Solomon
    parity of a two-byte message (the value's ordinal, supporting up to
    2^16 values per set) with [ecc_len] equal to the byte width of the
    generated constant — 4 bytes for a typical ENUM — which yields a
    minimum pairwise bit-level Hamming distance of 8 in practice. *)

val value : width_bytes:int -> int -> int
(** [value ~width_bytes ordinal] is the diversified constant for
    [ordinal] (1-based in the paper; any value in [0, 65535] works).
    @raise Invalid_argument if [width_bytes] is not in [1, 8] or the
    ordinal is out of range. *)

val values : ?width_bytes:int -> count:int -> unit -> int list
(** The paper's generator: constants for ordinals [1..count]
    ([width_bytes] defaults to 4). *)

val hamming : int -> int -> int
(** Bit-level Hamming distance. *)

val min_pairwise_hamming : int list -> int
(** Minimum over all pairs; [max_int] for lists shorter than 2. *)
