(** The finite field GF(2^8) with the conventional primitive polynomial
    [x^8 + x^4 + x^3 + x^2 + 1] (0x11D) and generator [alpha = 2] — the
    same field as the open-source codec the paper builds its constant
    diversification on. Elements are ints in [0, 255]. *)

val add : int -> int -> int
(** Addition = subtraction = XOR in characteristic 2. *)

val sub : int -> int -> int

val mul : int -> int -> int

val div : int -> int -> int
(** @raise Division_by_zero when the divisor is 0. *)

val inv : int -> int
(** @raise Division_by_zero on 0. *)

val pow : int -> int -> int
(** [pow x n] with [n >= 0]; [pow 0 0 = 1]. *)

val exp : int -> int
(** [exp i] is [alpha^i]; accepts any non-negative exponent. *)

val log : int -> int
(** Discrete log base alpha. @raise Invalid_argument on 0. *)
