(** Polynomials over GF(2^8), represented as int arrays with the
    highest-degree coefficient first (the convention of most RS codecs).
    The zero polynomial is [[|0|]]. *)

type t = int array

val normalize : t -> t
(** Strip leading zero coefficients. *)

val degree : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool

val add : t -> t -> t
val mul : t -> t -> t
val scale : int -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(quotient, remainder)].
    @raise Division_by_zero if [b] is zero. *)

val eval : t -> int -> int
(** Horner evaluation. *)

val generator : int -> t
(** [generator n] is the degree-n Reed-Solomon generator polynomial
    [(x - alpha^0)(x - alpha^1)...(x - alpha^(n-1))]. *)

val pp : t Fmt.t
