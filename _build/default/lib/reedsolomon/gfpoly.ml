type t = int array

let normalize p =
  let n = Array.length p in
  let rec first i = if i < n - 1 && p.(i) = 0 then first (i + 1) else i in
  let i = first 0 in
  if i = 0 then p else Array.sub p i (n - i)

let degree p = Array.length (normalize p) - 1
let is_zero p = Array.for_all (fun c -> c = 0) p
let equal a b = normalize a = normalize b

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make n 0 in
  Array.iteri (fun i c -> out.(i + n - la) <- c) a;
  Array.iteri (fun i c -> out.(i + n - lb) <- Gf256.add out.(i + n - lb) c) b;
  normalize out

let mul a b =
  if is_zero a || is_zero b then [| 0 |]
  else begin
    let out = Array.make (Array.length a + Array.length b - 1) 0 in
    Array.iteri
      (fun i ca ->
        Array.iteri
          (fun j cb -> out.(i + j) <- Gf256.add out.(i + j) (Gf256.mul ca cb))
          b)
      a;
    normalize out
  end

let scale k p = normalize (Array.map (Gf256.mul k) p)

let divmod a b =
  let b = normalize b in
  if is_zero b then raise Division_by_zero;
  let a = Array.copy (normalize a) in
  let la = Array.length a and lb = Array.length b in
  if la < lb then ([| 0 |], normalize a)
  else begin
    let lead = b.(0) in
    let quot = Array.make (la - lb + 1) 0 in
    for i = 0 to la - lb do
      let coef = Gf256.div a.(i) lead in
      quot.(i) <- coef;
      if coef <> 0 then
        for j = 0 to lb - 1 do
          a.(i + j) <- Gf256.sub a.(i + j) (Gf256.mul coef b.(j))
        done
    done;
    (normalize quot, normalize (Array.sub a (la - lb + 1) (lb - 1)))
  end

let eval p x = Array.fold_left (fun acc c -> Gf256.add (Gf256.mul acc x) c) 0 p

let generator n =
  let rec go acc i =
    if i = n then acc else go (mul acc [| 1; Gf256.exp i |]) (i + 1)
  in
  go [| 1 |] 0

let pp ppf p =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any " ") int) (normalize p)
