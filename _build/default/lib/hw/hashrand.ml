(* SplitMix64 finaliser over Int64, folded over the coordinates. *)

let gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash ~seed coords =
  let open Int64 in
  let state =
    List.fold_left
      (fun acc c -> mix64 (add (mul acc gamma) (of_int c)))
      (mix64 (add (of_int seed) gamma))
      coords
  in
  to_int (shift_right_logical state 2)

let u01 ~seed coords =
  float_of_int (hash ~seed coords land 0x3FFFFFFFFFFF)
  /. float_of_int 0x400000000000

let bits ~seed coords ~width =
  if width < 1 || width > 32 then invalid_arg "Hashrand.bits: width";
  hash ~seed coords land ((1 lsl width) - 1)
