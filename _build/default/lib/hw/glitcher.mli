(** The ChipWhisperer stand-in: drives the target's clock and inserts
    glitches at programmed points relative to the trigger pin.

    Parameters mirror the real tool: [ext_offset] counts clock cycles
    from a trigger edge, [width] and [offset] shape the inserted clock
    edge as percentages in [-49, +49] (Figure 1), and [repeat] stretches
    the glitch over multiple consecutive cycles (the long-glitch attack
    of Table III). A schedule may arm several glitches, each on its own
    trigger edge — the multi-glitch attack of Table II uses two entries
    with identical parameters on triggers 0 and 1. *)

type params = {
  width : int;  (** [-49, 49] *)
  offset : int;  (** [-49, 49] *)
  ext_offset : int;  (** cycles after the trigger edge *)
  repeat : int;  (** number of consecutive glitched cycles, >= 1 *)
  trigger_index : int;  (** which rising edge arms this glitch (0-based) *)
}

val single : width:int -> offset:int -> ext_offset:int -> params
val with_repeat : params -> int -> params

type observation = {
  stop : [ `Stopped of Machine.Exec.stop | `Timeout ];
  cycles : int;  (** total cycles executed *)
  fired : int;  (** glitched cycles that actually produced a fault *)
  glitched_cycles : int;  (** cycles that fell inside an armed window *)
}

val run :
  ?config:Susceptibility.config ->
  ?max_cycles:int ->
  ?nonce:int ->
  ?from:Board.snapshot ->
  Board.t ->
  params list ->
  observation
(** Reset the board (or rewind it to [from]) and run it to completion
    (or [max_cycles] total board cycles, default 3,000) with the
    schedule armed. [nonce] separates repeated attempts with identical
    parameters (attempt-level noise). The board is left un-reset for
    post-mortem inspection. *)
