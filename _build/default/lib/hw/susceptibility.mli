(** The physical fault model: what a clock glitch with a given (width,
    offset) does to the instruction stream at a given cycle.

    This is the one module where physics is replaced by a calibrated
    parametric model (see DESIGN.md). Structure:

    - a {e landscape} [e(width, offset)] in [0, 1] built from a few
      narrow Gaussian sweet spots — glitches are only effective where the
      injected edge violates the pipeline's setup/hold margins, and the
      effective region is a small fraction of the full parameter plane
      (the paper's full sweeps succeed on ~0.3-1.3% of attempts);
    - a per-attempt noise draw: an attempt at parameter point p fires iff
      [u(seed, p, cycle, nonce) < e(p) * class_factor(instr)]. Because
      [e] depends only on the physical setting, repeating the same
      parameters is strongly correlated (multi-glitch full success is
      far above the product of independent rates, as in Table II) while
      never deterministic;
    - a {e class factor} per instruction kind: loads are the easiest to
      disturb, compares and branches follow, register-only ALU ops are
      nearly immune — the paper's RQ4 findings;
    - an {e effect} draw for firing glitches: skip the instruction,
      corrupt the fetched encoding with 1->0-biased bit flips, corrupt a
      load's destination register (bit flips or bus residue such as the
      SP or the GPIO address — the values seen post-mortem in Table I),
      or flip the Z flag during a compare. *)

type config = {
  seed : int;
  core_amplitude : float;
      (** peak of a spot's near-deterministic core (>= 1 makes the very
          centre fire every attempt — the V-B tuner's prize) *)
  core_sigma : float;  (** core radius: one to a few grid points *)
  tail_amplitude : float;
      (** height of the broad marginal tail (well below 0.5, so tail
          successes rarely repeat: Table II's partial >> full) *)
  tail_sigma : float;  (** tail radius, in percent units *)
  n_spots : int;  (** sweet spots scattered over the (w, o) plane *)
  p_bit_clear : float;  (** per-bit 1->0 probability in word corruption *)
  p_bit_set : float;  (** per-bit 0->1 probability (clock glitches are
                          strongly biased toward clearing) *)
}

val default : config

(** What happens to the glitched cycle. The board supplies the true
    encoding / loaded value where the effect needs one. *)
type effect =
  | No_fault
  | Skip  (** targeted instruction executes as a NOP *)
  | Corrupt_fetch  (** the fetched encoding is bit-corrupted before decode *)
  | Load_residue of int  (** load's destination replaced by a bus residue *)
  | Load_bitflip  (** load's destination value bit-corrupted *)
  | Flip_z  (** the compare's Z flag is inverted after execution *)
  | Pc_corrupt  (** the prefetch address latch is destroyed: the core
                    runs away and (almost always) crashes *)

val pp_effect : effect Fmt.t

val landscape : config -> width:int -> offset:int -> float
(** Effectiveness of the physical parameter point; pure in (config,
    width, offset). *)

val class_factor : Thumb.Instr.t -> float
(** Relative susceptibility of the executing instruction (RQ4). *)

val roll :
  config ->
  sustained:bool ->
  width:int ->
  offset:int ->
  cycle:int ->
  nonce:int ->
  instr:Thumb.Instr.t ->
  sp:int ->
  effect
(** Decide the effect of one glitched cycle. [nonce] distinguishes
    attempts with identical parameters; [sp] seeds realistic bus-residue
    values. [sustained] marks glitches stretched over many consecutive
    cycles (long-glitch attacks), whose aborted loads read back zero. *)

val corrupt_word : config -> salt:int list -> int -> int
(** 1->0-biased bit corruption of a 16-bit instruction word. *)

val corrupt_value32 : config -> salt:int list -> int -> int
(** Same bias over a 32-bit data value. *)
