type params = {
  width : int;
  offset : int;
  ext_offset : int;
  repeat : int;
  trigger_index : int;
}

let single ~width ~offset ~ext_offset =
  { width; offset; ext_offset; repeat = 1; trigger_index = 0 }

let with_repeat p repeat = { p with repeat }

type observation = {
  stop : [ `Stopped of Machine.Exec.stop | `Timeout ];
  cycles : int;
  fired : int;
  glitched_cycles : int;
}

(* Does any armed window overlap [start, start+duration)? If so, return
   (params, relative_cycle) for the earliest overlapping cycle. *)
let active_window schedule edges ~start ~duration =
  List.fold_left
    (fun acc p ->
      match List.nth_opt edges p.trigger_index with
      | None -> acc
      | Some edge ->
        let w_lo = edge + p.ext_offset in
        let w_hi = w_lo + p.repeat in
        let lo = max w_lo start and hi = min w_hi (start + duration) in
        if lo < hi then
          let candidate = (p, lo - edge) in
          match acc with
          | Some (_, best) when best <= lo - edge -> acc
          | Some _ | None -> Some candidate
        else acc)
    None schedule

let concretise config ~salt (instr : Thumb.Instr.t)
    (effect : Susceptibility.effect) : Board.applied * bool =
  match effect with
  | Susceptibility.No_fault -> (Board.Normal, false)
  | Susceptibility.Skip -> (Board.As_nop, true)
  | Susceptibility.Corrupt_fetch ->
    let word = Thumb.Encode.instr instr in
    let word' = Susceptibility.corrupt_word config ~salt word in
    if word' = word then (Board.Normal, false) else (Board.Fetch_word word', true)
  | Susceptibility.Load_residue v -> (Board.Load_value v, true)
  | Susceptibility.Load_bitflip ->
    (Board.Load_mangle (fun v -> Susceptibility.corrupt_value32 config ~salt v), true)
  | Susceptibility.Flip_z -> (Board.Z_flip, true)
  | Susceptibility.Pc_corrupt ->
    (* corrupting the prefetch address sends the core into unmapped or
       unintended memory; derive a deterministic bogus target *)
    let bogus =
      0x1000 + (2 * Hashrand.bits ~seed:config.seed (8 :: salt) ~width:16)
    in
    (Board.Pc_set bogus, true)

(* Susceptibility of the decode and fetch latches: encoding corruption
   there applies to whatever instruction occupies the stage, regardless
   of its class — it is the latch being disturbed, not the ALU. *)
let back_stage_factor = 0.55

let run ?(config = Susceptibility.default) ?(max_cycles = 3_000) ?(nonce = 0)
    ?from board schedule =
  (match from with
  | Some snap -> Board.restore board snap
  | None -> Board.reset board);
  let fired = ref 0 and glitched = ref 0 in
  (* Corruption planted in the decode/fetch stages materialises when the
     victim address is reached. A branch in between flushes the pipeline
     and the planted corruption with it: the entry is simply never
     consumed (and is dropped at the next plant). *)
  let pending : (int, Board.applied) Hashtbl.t = Hashtbl.create 4 in
  let rec go () =
    if Board.cycles board >= max_cycles then `Timeout
    else
      match Board.peek board with
      | Error stop -> `Stopped stop
      | Ok instr -> (
        let pc = Board.pc board in
        let duration = Thumb.Cycles.of_instr ~taken:true instr in
        let edges = Board.trigger_edges board in
        let applied =
          match Hashtbl.find_opt pending pc with
          | Some planted ->
            Hashtbl.remove pending pc;
            planted
          | None -> (
            match
              active_window schedule edges ~start:(Board.cycles board) ~duration
            with
            | None -> Board.Normal
            | Some (p, rel_cycle) ->
              incr glitched;
              let point_salt = [ p.width; p.offset; rel_cycle ] in
              let attempt_nonce = (nonce * 31) + p.trigger_index in
              (* Which of the Cortex-M0's three pipeline stages does the
                 glitch disturb? Decode and fetch hold the next two
                 instructions. *)
              let stage_pick = Hashrand.u01 ~seed:config.seed (4 :: point_salt) in
              if stage_pick < 0.5 then begin
                let effect =
                  Susceptibility.roll config ~sustained:(p.repeat > 4)
                    ~width:p.width ~offset:p.offset ~cycle:rel_cycle
                    ~nonce:attempt_nonce ~instr ~sp:(Board.reg board 13)
                in
                let applied, did_fire =
                  concretise config ~salt:point_salt instr effect
                in
                if did_fire then incr fired;
                applied
              end
              else begin
                let delta = if stage_pick < 0.8 then 2 else 4 in
                let victim = pc + delta in
                let gate =
                  Hashrand.u01 ~seed:config.seed
                    (5 :: p.width :: p.offset :: rel_cycle :: [ attempt_nonce ])
                in
                let e =
                  Susceptibility.landscape config ~width:p.width ~offset:p.offset
                in
                (if gate < e *. back_stage_factor then
                   match Board.word_at board victim with
                   | None -> ()
                   | Some victim_word ->
                     incr fired;
                     let planted =
                       if Hashrand.u01 ~seed:config.seed (6 :: point_salt) < 0.4
                       then Board.As_nop
                       else
                         Board.Fetch_word
                           (Susceptibility.corrupt_word config ~salt:point_salt
                              victim_word)
                     in
                     Hashtbl.replace pending victim planted);
                Board.Normal
              end)
        in
        match Board.step ~applied board with
        | Machine.Exec.Running -> go ()
        | Machine.Exec.Stopped s -> `Stopped s)
  in
  let stop = go () in
  { stop; cycles = Board.cycles board; fired = !fired; glitched_cycles = !glitched }
