(** Deterministic stateless randomness for the physical fault model.

    Every stochastic decision in the glitch simulation is a pure
    function of (seed, coordinates), so an entire campaign is exactly
    reproducible, and — critically for the multi-glitch experiments —
    two attempts with the *same* glitcher parameters but different
    attempt nonces draw independent noise while sharing the same
    underlying susceptibility landscape, which is what produces the
    paper's partial-vs-full correlation. *)

val hash : seed:int -> int list -> int
(** SplitMix64-style avalanche of the seed and coordinates; uniform over
    62 bits (non-negative OCaml int). *)

val u01 : seed:int -> int list -> float
(** Uniform float in [0, 1). *)

val bits : seed:int -> int list -> width:int -> int
(** Uniform [width]-bit integer ([1 <= width <= 32]). *)
