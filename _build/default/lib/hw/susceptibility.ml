type config = {
  seed : int;
  core_amplitude : float;
  core_sigma : float;
  tail_amplitude : float;
  tail_sigma : float;
  n_spots : int;
  p_bit_clear : float;
  p_bit_set : float;
}

let default =
  { seed = 0x51075ED;
    core_amplitude = 1.3;
    core_sigma = 0.8;
    tail_amplitude = 0.42;
    tail_sigma = 5.0;
    n_spots = 3;
    p_bit_clear = 0.35;
    p_bit_set = 0.04 }

type effect =
  | No_fault
  | Skip
  | Corrupt_fetch
  | Load_residue of int
  | Load_bitflip
  | Flip_z
  | Pc_corrupt

let pp_effect ppf = function
  | No_fault -> Fmt.string ppf "no-fault"
  | Skip -> Fmt.string ppf "skip"
  | Corrupt_fetch -> Fmt.string ppf "corrupt-fetch"
  | Load_residue v -> Fmt.pf ppf "load-residue 0x%08x" v
  | Load_bitflip -> Fmt.string ppf "load-bitflip"
  | Flip_z -> Fmt.string ppf "flip-z"
  | Pc_corrupt -> Fmt.string ppf "pc-corrupt"

(* Sweet-spot centres are derived from the seed so different boards have
   different-but-stable landscapes, like real silicon. *)
let spots config =
  List.init config.n_spots (fun k ->
      let pick salt =
        float_of_int (Hashrand.bits ~seed:config.seed [ salt; k ] ~width:7) -. 64.
      in
      let clamp v = Float.max (-45.) (Float.min 45. v) in
      (clamp (pick 101), clamp (pick 202)))

(* Each sweet spot is a mixture of a tiny near-deterministic core (what
   the Section V-B tuner hunts for) and a broad shallow tail of
   marginal, poorly-repeatable parameter points. The tail carries most
   of the success mass, which is why a full sweep's successes mostly do
   NOT repeat — the partial >> full gap of Table II. *)
let landscape config ~width ~offset =
  let w = float_of_int width and o = float_of_int offset in
  List.fold_left
    (fun acc (cw, co) ->
      let d2 = ((w -. cw) ** 2.) +. ((o -. co) ** 2.) in
      let core =
        config.core_amplitude
        *. exp (-.d2 /. (2. *. config.core_sigma *. config.core_sigma))
      in
      let tail =
        config.tail_amplitude
        *. exp (-.d2 /. (2. *. config.tail_sigma *. config.tail_sigma))
      in
      Float.max acc (core +. tail))
    0. (spots config)

(* RQ4: loads are easy, compares and branches follow, register-only ALU
   work is nearly immune. *)
let class_factor (i : Thumb.Instr.t) =
  if Thumb.Instr.is_load i then 1.0
  else if Thumb.Instr.is_store i then 0.6
  else
    match i with
    | Imm (CMPi, _, _) | Alu (CMPr, _, _) | Hi_cmp _ | Alu (TST, _, _)
    | Alu (CMN, _, _) -> 0.8
    | B_cond _ | B _ | Bx _ | Bl_hi _ | Bl_lo _ -> 0.85
    | Imm (MOVi, _, _) | Hi_mov _ | Load_addr _ -> 0.45
    | Shift _ | Add_sub _ | Imm ((ADDi | SUBi), _, _) | Alu _ | Hi_add _
    | Sp_adjust _ -> 0.15
    | Swi _ | Bkpt _ | Undefined _ -> 0.3
    | Ldr_pc _ | Mem_reg _ | Mem_sign _ | Mem_imm _ | Mem_half _ | Mem_sp _
    | Push _ | Pop _ | Stmia _ | Ldmia _ -> 0.6

let biased_flip config ~p_clear ~salt ~bits word =
  let flipped = ref 0 in
  for bit = 0 to bits - 1 do
    let u = Hashrand.u01 ~seed:config.seed (997 :: bit :: salt) in
    if word land (1 lsl bit) <> 0 then begin
      if u < p_clear then flipped := !flipped lor (1 lsl bit)
    end
    else if u < config.p_bit_set then flipped := !flipped lor (1 lsl bit)
  done;
  word lxor !flipped

let corrupt_word config ~salt word =
  biased_flip config ~p_clear:config.p_bit_clear ~salt ~bits:16 word

(* Data latches hold their value more robustly than the instruction
   path: a register flip is rarer per bit than an encoding flip, which
   is why while(a) resists glitching better than the single-bit Hamming
   distance of its guard would suggest (paper Section V-A). *)
let corrupt_value32 config ~salt v =
  biased_flip config ~p_clear:(config.p_bit_clear *. 0.4) ~salt ~bits:32 v

(* Bus residue candidates for corrupted loads: stack pointer, the GPIO
   data-register address, and mixes thereof — the families of values the
   paper observed in the comparator register post-mortem. *)
let residue config ~salt ~sp =
  let gpio = 0x48000028 in
  match Hashrand.bits ~seed:config.seed (331 :: salt) ~width:3 with
  | 0 | 1 | 2 -> 0 (* failed load: the bus reads back idle/zero *)
  | 3 -> sp
  | 4 -> gpio
  | 5 ->
    ((gpio lsl 8) land 0xFFFFFFFF)
    lor Hashrand.bits ~seed:config.seed (332 :: salt) ~width:8
  | 6 -> sp lxor Hashrand.bits ~seed:config.seed (333 :: salt) ~width:5
  | _ -> Hashrand.bits ~seed:config.seed (334 :: salt) ~width:32

let roll config ~sustained ~width ~offset ~cycle ~nonce ~instr ~sp =
  (* Attempt noise only gates whether the glitch fires; WHAT it does at
     a fixed (width, offset, cycle) point is deterministic, like the
     repeatable electrical disturbance on real silicon. This is what
     lets the paper's tuning search find 10-out-of-10 parameters. *)
  let salt = [ width; offset; cycle ] in
  let e = landscape config ~width ~offset in
  let gate = Hashrand.u01 ~seed:config.seed (1 :: width :: offset :: cycle :: [ nonce ]) in
  (* Hammering every cycle eventually aborts a bus read even at
     parameter points too weak to disturb a single cycle: sustained
     windows see loads fail far more readily. *)
  let factor =
    if sustained && Thumb.Instr.is_load instr then
      Float.min 1.2 (2.5 *. class_factor instr)
    else class_factor instr
  in
  if gate >= e *. factor then No_fault
  else if
    (* A glitch sustained over many cycles destabilises the whole core:
       with every additional disturbed cycle the prefetch address latch
       is at risk, and the run ends in a crash instead of a controlled
       skip. This is why the paper's long-glitch counts FALL with window
       length for most guards (Table III) and why long attacks against
       defended firmware are detected or fatal far more often than they
       succeed (Table VI). *)
    sustained
    && Hashrand.u01 ~seed:config.seed (7 :: cycle :: salt) < 0.28
  then Pc_corrupt
  else begin
    let pick = Hashrand.u01 ~seed:config.seed (2 :: salt) in
    if Thumb.Instr.is_load instr then begin
      (* A glitch sustained over many consecutive cycles starves the
         memory interface: the aborted read returns the idle bus value
         of zero (the paper's hypothesis for the 10x long-glitch
         success-rate jump on while(a), Section V-D). *)
      if sustained then (if pick < 0.2 then Skip else Load_residue 0)
      else if pick < 0.25 then Skip
      else if pick < 0.65 then begin
        if Hashrand.u01 ~seed:config.seed (3 :: salt) < 0.5 then
          Load_residue (residue config ~salt ~sp)
        else Load_bitflip
      end
      else Corrupt_fetch
    end
    else
      match instr with
      | Thumb.Instr.Imm (CMPi, _, _) | Thumb.Instr.Alu (CMPr, _, _)
      | Thumb.Instr.Hi_cmp _ ->
        if pick < 0.4 then Skip
        else if pick < 0.7 then Flip_z
        else Corrupt_fetch
      | Thumb.Instr.B_cond _ -> if pick < 0.55 then Skip else Corrupt_fetch
      | Thumb.Instr.Shift _ | Thumb.Instr.Add_sub _ | Thumb.Instr.Imm _
      | Thumb.Instr.Alu _ | Thumb.Instr.Hi_add _ | Thumb.Instr.Hi_mov _
      | Thumb.Instr.Bx _ | Thumb.Instr.Ldr_pc _ | Thumb.Instr.Mem_reg _
      | Thumb.Instr.Mem_sign _ | Thumb.Instr.Mem_imm _ | Thumb.Instr.Mem_half _
      | Thumb.Instr.Mem_sp _ | Thumb.Instr.Load_addr _ | Thumb.Instr.Sp_adjust _
      | Thumb.Instr.Push _ | Thumb.Instr.Pop _ | Thumb.Instr.Stmia _
      | Thumb.Instr.Ldmia _ | Thumb.Instr.Swi _ | Thumb.Instr.B _
      | Thumb.Instr.Bl_hi _ | Thumb.Instr.Bl_lo _ | Thumb.Instr.Bkpt _
      | Thumb.Instr.Undefined _ ->
        if pick < 0.5 then Skip else Corrupt_fetch
  end
