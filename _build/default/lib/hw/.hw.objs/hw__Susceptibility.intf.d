lib/hw/susceptibility.mli: Fmt Thumb
