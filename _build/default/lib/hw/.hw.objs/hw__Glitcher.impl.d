lib/hw/glitcher.ml: Board Hashrand Hashtbl List Machine Susceptibility Thumb
