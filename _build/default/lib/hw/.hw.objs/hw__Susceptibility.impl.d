lib/hw/susceptibility.ml: Float Fmt Hashrand List Thumb
