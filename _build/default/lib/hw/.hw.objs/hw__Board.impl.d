lib/hw/board.ml: Array Bytes List Lower Machine Thumb
