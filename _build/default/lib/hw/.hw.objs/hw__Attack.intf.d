lib/hw/attack.mli: Board Glitcher Susceptibility
