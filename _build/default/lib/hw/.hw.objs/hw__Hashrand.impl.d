lib/hw/hashrand.ml: Int64 List
