lib/hw/attack.ml: Array Board Glitcher Hashtbl List Machine Option Printf
