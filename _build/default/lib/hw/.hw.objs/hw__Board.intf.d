lib/hw/board.mli: Lower Machine Thumb
