lib/hw/glitcher.mli: Board Machine Susceptibility
