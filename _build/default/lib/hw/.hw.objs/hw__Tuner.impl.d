lib/hw/tuner.ml: Attack Board Glitcher List Susceptibility
