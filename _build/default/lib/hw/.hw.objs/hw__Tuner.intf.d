lib/hw/tuner.mli: Attack Susceptibility
