lib/hw/hashrand.mli:
