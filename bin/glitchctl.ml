(* glitchctl: the command-line face of the toolkit.

     glitchctl asm file.s            assemble and list
     glitchctl disasm d003 2307      decode halfwords
     glitchctl run file.s            execute on the plain machine
     glitchctl emulate beq --model and
                                     Figure-2 campaign for one branch
     glitchctl compile fw.c --defenses all --sensitive a,b --dump
                                     GlitchResistor pipeline + objdump
     glitchctl attack fw.c --defenses all --attack single --step 4
                                     parameter sweep against an image
     glitchctl table 1 --guard not_a --jobs 4
                                     Table I/II/III hardware sweep
     glitchctl tune not_a            Section V-B parameter search
     glitchctl lint fw.c --defenses all --json
                                     static glitch-surface + defense audit
     glitchctl exhaust fw.c --jobs 4 --cache-dir .cache
                                     trace-wide exhaustive fault campaign
     glitchctl serve --cache-dir .cache --jobs 4
                                     JSON-lines batch audit service *)

open Cmdliner

(* Exit-code discipline, so CI can tell a crash from a finding:
     0  success / clean lint
     1  internal failure (a bug in the toolkit)
     2  invalid input (unparsable source, unknown names, bad words)
     3  Error-severity lint findings
   (cmdliner itself reserves 124/125 for CLI and internal errors). *)
let exit_internal = 1
let exit_input = 2
let exit_findings = 3

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- shared argument parsers -------------------------------------------- *)

let known_defense_sets =
  [ "none"; "all"; "all-but-delay"; "branches"; "loops"; "integrity";
    "returns"; "delay"; "sigcfi"; "domains"; "cfi"; "all-cfi" ]

let defenses_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "none" -> Ok Resistor.Config.none
    | "all" -> Ok (Resistor.Config.all ())
    | "all-but-delay" | "all\\delay" -> Ok (Resistor.Config.all_but_delay ())
    | "branches" -> Ok (Resistor.Config.only ~branches:true ())
    | "loops" -> Ok (Resistor.Config.only ~loops:true ())
    | "integrity" -> Ok (Resistor.Config.only ~integrity:true ())
    | "returns" -> Ok (Resistor.Config.only ~returns:true ~enums:true ())
    | "delay" -> Ok (Resistor.Config.only ~delay:true ())
    | "sigcfi" -> Ok (Resistor.Config.only ~sigcfi:true ())
    | "domains" -> Ok (Resistor.Config.only ~domains:true ())
    | "cfi" -> Ok (Resistor.Config.only ~sigcfi:true ~domains:true ())
    | "all-cfi" ->
      Ok
        { (Resistor.Config.all_but_delay ()) with
          Resistor.Config.sigcfi = true; domains = true }
    | other ->
      Error
        (`Msg
          (Printf.sprintf "unknown defense set %S (known: %s)" other
             (String.concat ", " known_defense_sets)))
  in
  Arg.conv (parse, fun ppf c -> Fmt.string ppf (Resistor.Config.name c))

let guard_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "not_a" | "!a" | "while(!a)" -> Ok Hw.Attack.While_not_a
    | "a" | "while(a)" -> Ok Hw.Attack.While_a
    | "ne" | "const" | "while(a!=k)" -> Ok Hw.Attack.While_ne_const
    | other -> Error (`Msg (Printf.sprintf "unknown guard %S (not_a|a|ne)" other))
  in
  Arg.conv (parse, fun ppf g -> Fmt.string ppf (Hw.Attack.guard_name g))

let sensitive_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "sensitive" ] ~docv:"GLOBALS"
        ~doc:"Comma-separated globals for the data-integrity pass.")

let config_arg =
  Arg.(
    value
    & opt defenses_conv Resistor.Config.none
    & info [ "defenses" ] ~docv:"SET"
        ~doc:
          "none, all, all-but-delay, branches, loops, integrity, returns, \
           delay, sigcfi, domains, cfi (both CFI passes), all-cfi \
           (all-but-delay plus both CFI passes).")

let with_sensitive config sensitive = { config with Resistor.Config.sensitive }

(* [chunks] clamps the default to the command's parallel work-item
   count: a table sweep has only 8-11 items, so domains beyond that
   would just spin. Note the recommended domain count reflects the
   host's cores — in a CPU-limited CI container, pass --jobs
   explicitly. *)
let jobs_arg ?chunks () =
  Arg.(
    value
    & opt int (Runtime.Pool.default_jobs ?chunks ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for campaign sweeps (default: the recommended \
           domain count, clamped to the command's work-item count). \
           Results are bit-identical at any job count; 1 takes the \
           sequential code path.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent result cache (created if missing). Sweeps whose \
           (snippet, fault model, parameters, code version) key is \
           already cached are served without executing anything; \
           corrupted entries are treated as misses.")

(* jobs = 1 must not spawn domains: it is the original sequential path *)
let with_jobs jobs f =
  if jobs > 1 then Runtime.Pool.with_pool ~jobs (fun pool -> f (Some pool))
  else f None

(* Fold the pool's queue-wait/utilization accounting into a PERF
   record, so pool overhead shows up in the machine lines instead of
   having to be inferred from scaling curves. *)
let with_pool_perf ~jobs pool perf =
  match pool with
  | None -> perf
  | Some pool ->
    let st = Runtime.Pool.stats pool in
    Stats.Perf.with_pool_stats
      ~wait_s:(Runtime.Pool.stats_wait ~jobs st)
      ~utilization:(Runtime.Pool.stats_utilization ~jobs st)
      perf

(* --- asm ------------------------------------------------------------------- *)

let asm_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    match Thumb.Asm.assemble (read_file file) with
    | instrs ->
      List.iteri
        (fun i ins ->
          Fmt.pr "%4d:  %04x  %a@." (2 * i) (Thumb.Encode.instr ins)
            Thumb.Instr.pp ins)
        instrs;
      0
    | exception Thumb.Asm.Parse_error e ->
      Fmt.epr "%s: %a@." file Thumb.Asm.pp_error e;
      exit_input
  in
  Cmd.v (Cmd.info "asm" ~doc:"Assemble a Thumb-16 source file and list it.")
    Term.(const run $ file)

(* --- disasm ------------------------------------------------------------------ *)

let disasm_cmd =
  let words =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"HEXWORD")
  in
  let run words =
    let code = ref 0 in
    List.iter
      (fun s ->
        match int_of_string_opt ("0x" ^ s) with
        | Some w when w >= 0 && w <= 0xFFFF ->
          Fmt.pr "%04x  %a@." w Thumb.Instr.pp (Thumb.Decode.of_word w)
        | Some _ | None ->
          Fmt.epr "not a 16-bit hex word: %S@." s;
          code := exit_input)
      words;
    !code
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Decode 16-bit hex words.")
    Term.(const run $ words)

(* --- run ---------------------------------------------------------------------- *)

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let steps =
    Arg.(value & opt int 100_000 & info [ "max-steps" ] ~docv:"N")
  in
  let run file steps =
    match Machine.Loader.load_asm (read_file file) with
    | t ->
      let stop = Machine.Exec.run ~max_steps:steps t.mem t.cpu in
      Fmt.pr "stopped: %a@.%a@." Machine.Exec.pp_stop stop Machine.Cpu.pp t.cpu;
      0
    | exception Thumb.Asm.Parse_error e ->
      Fmt.epr "%s: %a@." file Thumb.Asm.pp_error e;
      exit_input
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Assemble and execute a program on the bare machine.")
    Term.(const run $ file $ steps)

(* --- emulate (figure 2 for one branch) ------------------------------------------ *)

let emulate_cmd =
  let branch =
    Arg.(value & pos 0 string "beq" & info [] ~docv:"BRANCH")
  in
  let model =
    let model_conv =
      Arg.conv
        ( (fun s ->
            match String.lowercase_ascii s with
            | "and" -> Ok Glitch_emu.Fault_model.And
            | "or" -> Ok Glitch_emu.Fault_model.Or
            | "xor" -> Ok Glitch_emu.Fault_model.Xor
            | other -> Error (`Msg (Printf.sprintf "unknown model %S" other))),
          fun ppf m -> Fmt.string ppf (Glitch_emu.Fault_model.name m) )
    in
    Arg.(
      value
      & opt model_conv Glitch_emu.Fault_model.And
      & info [ "model" ] ~docv:"M")
  in
  let isa =
    Arg.(
      value
      & opt (enum [ ("thumb", `Thumb); ("riscv", `Riscv) ]) `Thumb
      & info [ "isa" ] ~docv:"ISA" ~doc:"thumb (exhaustive) or riscv (sampled).")
  in
  let run branch model isa jobs cache_dir =
    match isa with
    | `Thumb -> (
      match
        List.find_opt
          (fun c -> "b" ^ Thumb.Instr.cond_name c = String.lowercase_ascii branch)
          Thumb.Instr.all_conds
      with
      | None ->
        Fmt.epr "unknown Thumb conditional branch %S@." branch;
        exit_input
      | Some cond ->
        let case = Glitch_emu.Testcase.conditional_branch cond in
        let result, status =
          with_jobs jobs (fun pool ->
              let cache = Option.map Cache.open_dir cache_dir in
              let svc = Service.create ?pool ?cache () in
              Service.run_case svc
                (Glitch_emu.Campaign.default_config model)
                case)
        in
        Fmt.pr "%s under %s over all 65,536 masks:@." case.name
          (Glitch_emu.Fault_model.name model);
        List.iter
          (fun cat ->
            Fmt.pr "  %-20s %6.2f%%@."
              (Glitch_emu.Campaign.category_name cat)
              (Glitch_emu.Campaign.category_percent result cat))
          Glitch_emu.Campaign.categories;
        if cache_dir <> None then
          Fmt.pr "cache: %s (%d executed, %d memoized)@."
            (Service.status_name status)
            result.stats.executed result.stats.memoized;
        0)
    | `Riscv -> (
      match
        List.find_opt
          (fun c -> Riscv.Instr.branch_cond_name c = String.lowercase_ascii branch)
          Riscv.Instr.branch_conds
      with
      | None ->
        Fmt.epr "unknown RV32I branch %S (beq|bne|blt|bge|bltu|bgeu)@." branch;
        exit_input
      | Some cond ->
        let case = Riscv.Campaign.conditional_branch cond in
        let result =
          Riscv.Campaign.run_case (Riscv.Campaign.default_config model) case
        in
        Fmt.pr "%s under %s (sampled masks):@." case.name
          (Glitch_emu.Fault_model.name model);
        List.iter
          (fun cat ->
            Fmt.pr "  %-20s %6.2f%%@."
              (Glitch_emu.Campaign.category_name cat)
              (Riscv.Campaign.category_percent result cat))
          Glitch_emu.Campaign.categories;
        0)
  in
  Cmd.v
    (Cmd.info "emulate"
       ~doc:
         "Exhaustive bit-flip campaign against one conditional branch. \
          With $(b,--cache-dir), Thumb results are cached persistently \
          and warm runs execute nothing.")
    Term.(const run $ branch $ model $ isa $ jobs_arg () $ cache_dir_arg)

(* --- compile -------------------------------------------------------------------- *)

let compile_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let dump = Arg.(value & flag & info [ "dump" ] ~doc:"Disassemble the image.") in
  let run file config sensitive dump =
    let config = with_sensitive config sensitive in
    match Resistor.Driver.compile config (read_file file) with
    | compiled ->
      Fmt.pr "defenses: %s@." (Resistor.Config.name config);
      List.iter
        (fun (section, bytes) -> Fmt.pr "  %-6s %6d bytes@." section bytes)
        (Lower.Layout.size_report compiled.image);
      (match compiled.reports.enum_report with
      | Some r ->
        List.iter
          (fun (name, values) ->
            Fmt.pr "  enum %s diversified (%d members)@." name
              (List.length values))
          r.rewritten
      | None -> ());
      (match compiled.reports.returns_report with
      | Some r ->
        Fmt.pr "  return codes: %d of %d considered functions diversified@."
          (List.length r.instrumented) r.considered
      | None -> ());
      (match compiled.reports.branches_report with
      | Some r -> Fmt.pr "  %d conditional branches duplicated@." r.branches_instrumented
      | None -> ());
      (match compiled.reports.loops_report with
      | Some r -> Fmt.pr "  %d loop guards duplicated@." r.loops_instrumented
      | None -> ());
      (match compiled.reports.delay_report with
      | Some r -> Fmt.pr "  %d random-delay sites@." r.sites
      | None -> ());
      if dump then print_string (Lower.Objdump.to_string compiled.image);
      0
    | exception Minic.Parser.Error e ->
      Fmt.epr "%s: %a@." file Minic.Parser.pp_error e;
      exit_input
    | exception Minic.Sema.Error e ->
      Fmt.epr "%s: %a@." file Minic.Sema.pp_error e;
      exit_input
    | exception Lower.Layout.Error e ->
      Fmt.epr "%s: %a@." file Lower.Layout.pp_error e;
      exit_input
    | exception Lower.Codegen.Error e ->
      Fmt.epr "%s: %a@." file Lower.Codegen.pp_error e;
      exit_input
    | exception e ->
      Fmt.epr "compile failed: %s@." (Printexc.to_string e);
      exit_internal
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Run the GlitchResistor pipeline on a Mini-C firmware.")
    Term.(const run $ file $ config_arg $ sensitive_arg $ dump)

(* --- attack ---------------------------------------------------------------------- *)

let attack_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let attack =
    let attack_conv =
      Arg.conv
        ( (fun s ->
            match String.lowercase_ascii s with
            | "single" -> Ok Resistor.Evaluate.Single
            | "long" -> Ok Resistor.Evaluate.Long
            | "windowed" -> Ok Resistor.Evaluate.Windowed
            | other -> Error (`Msg (Printf.sprintf "unknown attack %S" other))),
          fun ppf a -> Fmt.string ppf (Resistor.Evaluate.attack_name a) )
    in
    Arg.(
      value
      & opt attack_conv Resistor.Evaluate.Single
      & info [ "attack" ] ~docv:"A")
  in
  let step = Arg.(value & opt int 1 & info [ "step" ] ~docv:"N") in
  let run file config sensitive attack step jobs =
    let config = with_sensitive config sensitive in
    let source = read_file file in
    (* reuse the Table VI machinery on arbitrary firmware: it only needs
       a trigger, the attack-marker global, and the detection counter *)
    let compiled = Resistor.Driver.compile config source in
    match
      with_jobs jobs (fun pool ->
          let o, perf =
            Stats.Perf.time ~label:"attack" ~jobs ~items:0 (fun () ->
                Resistor.Evaluate.run_image ?pool ~sweep_step:step
                  compiled.image attack)
          in
          let perf = with_pool_perf ~jobs pool perf in
          (let n = o.Resistor.Evaluate.attempts in
           ({ perf with Stats.Perf.items = n; executed = n }, o)))
    with
    | perf, o ->
      Fmt.pr "%s vs %s: %d attempts, %d successes (%a), %d detections@."
        (Resistor.Evaluate.attack_name attack)
        (Resistor.Config.name config)
        o.attempts o.successes Stats.Rate.pp_pct
        (Resistor.Evaluate.success_rate o)
        o.detections;
      Fmt.pr "%s@." (Stats.Perf.machine_line perf);
      0
    | exception Minic.Parser.Error e ->
      Fmt.epr "%s: %a@." file Minic.Parser.pp_error e;
      exit_input
    | exception Minic.Sema.Error e ->
      Fmt.epr "%s: %a@." file Minic.Sema.pp_error e;
      exit_input
    | exception Invalid_argument _ ->
      Fmt.epr "firmware never raised the trigger (call __trigger_high())@.";
      exit_input
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:
         "Sweep the glitch-parameter plane against a firmware (it must call \
          __trigger_high() and set attack_success = 170 on compromise).")
    Term.(const run $ file $ config_arg $ sensitive_arg $ attack $ step $ jobs_arg ())

(* --- table ------------------------------------------------------------------------ *)

let table_cmd =
  let n =
    let n_conv =
      Arg.conv
        ( (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 1 && n <= 3 -> Ok n
            | Some _ | None -> Error (`Msg "expected a table number: 1, 2 or 3")),
          Fmt.int )
    in
    Arg.(required & pos 0 (some n_conv) None & info [] ~docv:"N")
  in
  let guard =
    Arg.(
      value
      & opt guard_conv Hw.Attack.While_not_a
      & info [ "guard" ] ~docv:"GUARD" ~doc:"not_a, a, or ne.")
  in
  let run n guard jobs =
    let perf_line label jobs pool (s : Hw.Attack.sweep) perf =
      let perf =
        Stats.Perf.with_cycles ~booted:s.emulated_cycles
          ~replayed:s.replayed_cycles
          { perf with Stats.Perf.items = s.attempts; executed = s.attempts }
      in
      let perf = with_pool_perf ~jobs pool perf in
      Fmt.pr "%s@." (Stats.Perf.machine_line { perf with Stats.Perf.label; jobs })
    in
    with_jobs jobs (fun pool ->
        match n with
        | 1 ->
          let t, perf =
            Stats.Perf.time ~label:"table1" ~jobs ~items:0 (fun () ->
                Hw.Attack.run_table1 ?pool guard)
          in
          Fmt.pr "Table I, %s (%d attempts per cycle):@."
            (Hw.Attack.guard_name guard) t.attempts_per_cycle;
          Array.iteri
            (fun cycle (c : Hw.Attack.cycle_stats) ->
              let values =
                c.values
                |> List.map (fun (v, k) -> Fmt.str "0x%X x%d" v k)
                |> String.concat "  "
              in
              Fmt.pr "  cycle %d: %4d successes  %s@." cycle c.successes values)
            t.per_cycle;
          perf_line "table1" jobs pool t.sweep1 perf
        | 2 ->
          let t, perf =
            Stats.Perf.time ~label:"table2" ~jobs ~items:0 (fun () ->
                Hw.Attack.run_table2 ?pool guard)
          in
          Fmt.pr "Table II, %s (%d attempts):@." (Hw.Attack.guard_name guard)
            t.attempts2;
          Array.iteri
            (fun cycle p ->
              Fmt.pr "  cycle %d: partial %4d  full %4d@." cycle p t.full.(cycle))
            t.partial;
          perf_line "table2" jobs pool t.sweep2 perf
        | _ ->
          let t, perf =
            Stats.Perf.time ~label:"table3" ~jobs ~items:0 (fun () ->
                Hw.Attack.run_table3 ?pool guard)
          in
          Fmt.pr "Table III, %s (%d attempts per window):@."
            (Hw.Attack.guard_name guard) t.attempts_per_window;
          List.iter
            (fun (last, s) -> Fmt.pr "  cycles 0-%d: %4d successes@." last s)
            t.windows;
          perf_line "table3" jobs pool t.sweep3 perf);
    0
  in
  Cmd.v
    (Cmd.info "table"
       ~doc:
         "Run one of the paper's hardware sweeps (Table I, II or III) via the \
          snapshot-replay kernel and print per-cycle counts plus a PERF line.")
    Term.(const run $ n $ guard $ jobs_arg ~chunks:8 ())

(* --- tune ------------------------------------------------------------------------- *)

let tune_cmd =
  let guard = Arg.(value & pos 0 guard_conv Hw.Attack.While_not_a & info [] ~docv:"GUARD") in
  let run guard =
    let r = Hw.Tuner.search guard in
    (match r.found with
    | Some (w, o, c) ->
      Fmt.pr "found width=%d offset=%d cycle=%d (%d attempts, ~%.0f simulated minutes)@."
        w o c r.attempts (r.seconds /. 60.)
    | None -> Fmt.pr "no fully reliable parameters found (%d attempts)@." r.attempts);
    Fmt.pr "%d cycles emulated, %d served by snapshot replay@." r.emulated_cycles
      r.replayed_cycles;
    0
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Search for 100%-reliable glitch parameters (Section V-B).")
    Term.(const run $ guard)

(* --- lint ------------------------------------------------------------------------- *)

let lint_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON on stdout.")
  in
  let cfcss =
    Arg.(
      value & flag
      & info [ "cfcss" ]
          ~doc:
            "Instrument with CFCSS signatures only (no GlitchResistor \
             passes): the Table VII witness — the signature audit comes \
             back clean while every guard stays direction-flippable.")
  in
  let exhaust =
    Arg.(
      value & flag
      & info [ "exhaust" ]
          ~doc:
            "Also run the trace-wide exhaustive fault campaign on the image \
             and report per-function agreement between the static surface \
             scores and the dynamic verdict tables.")
  in
  let sabotage_cfi =
    Arg.(
      value & flag
      & info [ "sabotage-cfi" ]
          ~doc:
            "Negative control: compile with the Sigcfi/Domains runtime \
             checks stripped. A CFI-defended build must then draw \
             Error-severity audit findings (exit 3); a clean report here \
             means the audit itself is broken.")
  in
  let absint =
    Arg.(
      value & flag
      & info [ "absint" ]
          ~doc:
            "Re-grade the structural guard audit with the abstract \
             fault-flow prover: a guard whose faulted continuations \
             provably all end in detection is downgraded even without a \
             duplicate, a structurally protected guard with a proven \
             deterministic escape is upgraded to an error, and the \
             prover's findings are merged into the report.")
  in
  let run file config sensitive json cfcss exhaust sabotage_cfi absint jobs =
    if sabotage_cfi then begin
      Resistor.Sigcfi.disable_checks := true;
      Resistor.Domains.disable_checks := true
    end;
    Fun.protect
      ~finally:(fun () ->
        Resistor.Sigcfi.disable_checks := false;
        Resistor.Domains.disable_checks := false)
    @@ fun () ->
    let target () =
      if Filename.check_suffix file ".s" then
        Analysis.Lint.of_instrs (Thumb.Asm.assemble (read_file file))
      else if cfcss then begin
        let source = read_file file in
        let m, reports =
          Resistor.Driver.compile_modul Resistor.Config.none source
        in
        let report = Resistor.Cfcss.run Resistor.Config.Spin m in
        let reports =
          { reports with
            Resistor.Driver.verify_warnings =
              reports.Resistor.Driver.verify_warnings
              @ Resistor.Pass.drain_warnings () }
        in
        { Analysis.Lint.image = Lower.Layout.link m;
          modul = Some m;
          config = Some Resistor.Config.none;
          reports = Some reports;
          cfcss = Some report }
      end
      else
        Analysis.Lint.of_compiled
          (Resistor.Driver.compile (with_sensitive config sensitive)
             (read_file file))
    in
    match target () with
    | target ->
      let report = Analysis.Lint.run target in
      let report =
        if not absint then report
        else
          let prove =
            Absint.Prove.run ?config:target.Analysis.Lint.config
              ?reports:target.Analysis.Lint.reports
              ?modul:target.Analysis.Lint.modul target.Analysis.Lint.image
          in
          { report with
            Analysis.Lint.diags = Absint.Prove.refine_lint report prove }
      in
      let agreement =
        if not exhaust then None
        else
          let spec =
            Exhaust.Campaign.spec_of_image ~name:(Filename.basename file)
              target.Analysis.Lint.image
          in
          let config = Exhaust.Campaign.default_config () in
          let result =
            with_jobs jobs (fun pool -> Exhaust.Campaign.run ?pool spec config)
          in
          let baseline, _stop = Exhaust.Campaign.baseline spec config in
          Some
            (Exhaust.Agreement.of_result ~baseline
               report.Analysis.Lint.surface result)
      in
      (match (json, agreement) with
      | true, None -> print_endline (Analysis.Lint.to_json report)
      | true, Some a ->
        Printf.printf {|{"lint":%s,"agreement":%s}|}
          (Analysis.Lint.to_json report)
          (Exhaust.Agreement.to_json a);
        print_newline ()
      | false, None -> Fmt.pr "%a@." Analysis.Lint.pp report
      | false, Some a ->
        Fmt.pr "%a@.%a" Analysis.Lint.pp report Exhaust.Agreement.pp a);
      if Analysis.Lint.errors report <> [] then exit_findings else 0
    | exception Thumb.Asm.Parse_error e ->
      Fmt.epr "%s: %a@." file Thumb.Asm.pp_error e;
      exit_input
    | exception Minic.Parser.Error e ->
      Fmt.epr "%s: %a@." file Minic.Parser.pp_error e;
      exit_input
    | exception Minic.Sema.Error e ->
      Fmt.epr "%s: %a@." file Minic.Sema.pp_error e;
      exit_input
    | exception Lower.Layout.Error e ->
      Fmt.epr "%s: %a@." file Lower.Layout.pp_error e;
      exit_input
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static glitch-surface analysis and defense audit of a Mini-C \
          firmware (compiled with $(b,--defenses)) or an assembly snippet \
          ($(i,.s)). Exits 0 when clean, 3 on Error-severity findings, 2 \
          on invalid input."
       ~exits:
         (Cmd.Exit.info 0 ~doc:"on a clean report (no Error findings)."
         :: Cmd.Exit.info exit_input ~doc:"on unparsable or invalid input."
         :: Cmd.Exit.info exit_findings
              ~doc:"on Error-severity lint findings."
         :: Cmd.Exit.defaults))
    Term.(
      const run $ file $ config_arg $ sensitive_arg $ json $ cfcss $ exhaust
      $ sabotage_cfi $ absint $ jobs_arg ())

(* --- prove ------------------------------------------------------------------------ *)

let prove_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON on stdout.")
  in
  let run file config sensitive json =
    match
      Resistor.Driver.compile (with_sensitive config sensitive) (read_file file)
    with
    | compiled ->
      let report =
        Absint.Prove.run ~config:compiled.Resistor.Driver.config
          ~reports:compiled.reports ~modul:compiled.modul compiled.image
      in
      if json then print_endline (Absint.Prove.to_json report)
      else Fmt.pr "%a" Absint.Prove.pp report;
      if Absint.Prove.errors report <> [] then exit_findings else 0
    | exception Minic.Parser.Error e ->
      Fmt.epr "%s: %a@." file Minic.Parser.pp_error e;
      exit_input
    | exception Minic.Sema.Error e ->
      Fmt.epr "%s: %a@." file Minic.Sema.pp_error e;
      exit_input
    | exception Lower.Layout.Error e ->
      Fmt.epr "%s: %a@." file Lower.Layout.pp_error e;
      exit_input
    | exception Lower.Codegen.Error e ->
      Fmt.epr "%s: %a@." file Lower.Codegen.pp_error e;
      exit_input
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Abstract-interpretation fault-flow audit of a Mini-C firmware \
          (compiled with $(b,--defenses)): for every conditional branch the \
          pristine run reaches, explore the direction-flipped continuation \
          and prove it detected/crashed, or exhibit an escape witness. \
          Error-severity escapes exit 3; a fully proven build exits 0."
       ~exits:
         (Cmd.Exit.info 0 ~doc:"when no deterministic escape was found."
         :: Cmd.Exit.info exit_input ~doc:"on unparsable or invalid input."
         :: Cmd.Exit.info exit_findings
              ~doc:"on a deterministic escape witness (Error severity)."
         :: Cmd.Exit.defaults))
    Term.(const run $ file $ config_arg $ sensitive_arg $ json)

(* --- exhaust ---------------------------------------------------------------------- *)

let cycles_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when 0 <= lo && lo < hi -> Ok (lo, hi)
      | _ -> Error (`Msg (Printf.sprintf "bad cycle window %S (want LO:HI)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad cycle window %S (want LO:HI)" s))
  in
  Arg.(
    value
    & opt (some (conv (parse, fun ppf (lo, hi) -> Fmt.pf ppf "%d:%d" lo hi)))
        None
    & info [ "cycles" ] ~docv:"LO:HI"
        ~doc:
          "Restrict injection to baseline cycles [LO, HI) instead of the \
           whole trace.")

let exhaust_mode_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("transient", Exhaust.Campaign.Transient);
             ("persistent", Exhaust.Campaign.Persistent) ])
        Exhaust.Campaign.Transient
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "transient: execute the perturbed word once, flash untouched; \
           persistent: write it to flash before the fetch.")

let exhaust_config ?(static = false) ?settle mode max_trace cycles =
  { (Exhaust.Campaign.default_config ()) with
    Exhaust.Campaign.mode;
    max_trace;
    cycles;
    settle_steps = settle;
    static_prune = static }

let run_exhaust ?static ?settle ~label compiled mode max_trace cycles jobs
    cache_dir =
  let spec = Exhaust.Campaign.spec_of_image ~name:label compiled.Resistor.Driver.image in
  let config = exhaust_config ?static ?settle mode max_trace cycles in
  with_jobs jobs (fun pool ->
      let cache = Option.map Cache.open_dir cache_dir in
      let (result, hit), perf =
        Stats.Perf.time ~label:"exhaust" ~jobs ~items:0 (fun () ->
            Exhaust.Campaign.run_cached ?pool ?cache spec config)
      in
      let perf =
        { (with_pool_perf ~jobs pool perf) with
          Stats.Perf.items = result.Exhaust.Campaign.points }
        |> Stats.Perf.with_pruned ~executed:result.Exhaust.Campaign.executed
             ~pruned:result.Exhaust.Campaign.pruned
             ~static_pruned:result.Exhaust.Campaign.static_pruned
      in
      (result, hit, perf))

let pp_exhaust_result ppf (r : Exhaust.Campaign.result) =
  Fmt.pf ppf "%s, %s mode: %d trace cycles (%s), settle %d@." r.spec_name
    (Exhaust.Campaign.mode_name r.mode)
    r.trace_steps
    (match r.baseline_stop with
    | None -> "still running"
    | Some s -> Fmt.str "%a" Machine.Exec.pp_stop s)
    r.settle;
  Fmt.pf ppf "cycles [%d, %d): %d injection points, %d distinct states@."
    r.cycle_lo r.cycle_hi r.points r.states;
  let header = "function" :: List.map Exhaust.Campaign.verdict_name Exhaust.Campaign.verdicts in
  let cell_of_counts counts =
    List.map
      (fun v -> string_of_int counts.(Exhaust.Campaign.verdict_index v))
      Exhaust.Campaign.verdicts
  in
  let body =
    List.map
      (fun (row : Exhaust.Campaign.row) -> row.fname :: cell_of_counts row.counts)
      r.rows
    @ [ "TOTAL" :: cell_of_counts r.totals ]
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w cells -> max w (String.length (List.nth cells i)))
          (String.length h) body)
      header
  in
  let pp_row cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        if i = 0 then Fmt.pf ppf "  %-*s" w cell else Fmt.pf ppf "  %*s" w cell)
      cells;
    Fmt.pf ppf "@."
  in
  pp_row header;
  List.iter pp_row body;
  Fmt.pf ppf
    "%d faulted at the injected step; continuations: %d executed, %d pruned \
     (%.1f%% shared)@."
    r.faulted r.executed r.pruned
    (100. *. Exhaust.Campaign.prune_rate r);
  if r.static_pruned > 0 then
    Fmt.pf ppf "static pre-pruner: %d points proven without emulation@."
      r.static_pruned

let exhaust_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let max_trace =
    Arg.(
      value & opt int 2048
      & info [ "max-trace" ] ~docv:"N"
          ~doc:"Baseline window: cycles traced (and injected into) from reset.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the result as JSON on stdout.")
  in
  let static =
    Arg.(
      value & flag
      & info [ "static" ]
          ~doc:
            "Pre-prune injection points with the abstract fault-flow prover: \
             points whose damage provably dies before the trace window ends \
             are classified without emulation. Verdict tables are \
             bit-identical either way; the soundness differential is \
             enforced by $(b,glitchctl fuzz --properties absint).")
  in
  let settle =
    Arg.(
      value
      & opt (some int) None
      & info [ "settle" ] ~docv:"N"
          ~doc:
            "Continuation budget after the injected step (default: \
             auto-derived from the baseline). A budget below the trace \
             window is what lets the static pre-pruner cover \
             non-terminating baselines.")
  in
  let run file config sensitive mode max_trace cycles json static settle jobs
      cache_dir =
    let config = with_sensitive config sensitive in
    match Resistor.Driver.compile config (read_file file) with
    | compiled ->
      let result, hit, perf =
        run_exhaust ~static ?settle ~label:(Filename.basename file) compiled
          mode max_trace cycles jobs cache_dir
      in
      if json then print_endline (Exhaust.Campaign.to_json result)
      else begin
        Fmt.pr "%a" pp_exhaust_result result;
        if cache_dir <> None then
          Fmt.pr "cache: %s@." (if hit then "hit" else "miss");
        Fmt.pr "%s@." (Stats.Perf.machine_line perf)
      end;
      0
    | exception Minic.Parser.Error e ->
      Fmt.epr "%s: %a@." file Minic.Parser.pp_error e;
      exit_input
    | exception Minic.Sema.Error e ->
      Fmt.epr "%s: %a@." file Minic.Sema.pp_error e;
      exit_input
    | exception Lower.Layout.Error e ->
      Fmt.epr "%s: %a@." file Lower.Layout.pp_error e;
      exit_input
    | exception Lower.Codegen.Error e ->
      Fmt.epr "%s: %a@." file Lower.Codegen.pp_error e;
      exit_input
  in
  Cmd.v
    (Cmd.info "exhaust"
       ~doc:
         "Trace-wide exhaustive fault campaign against a Mini-C firmware: \
          every (cycle, fault model, mask) injection point along the \
          baseline execution, classified against the pristine run. \
          Continuations reaching an already-seen machine state are pruned \
          through a shared state-hash map, so the per-function verdict \
          tables are bit-identical at any $(b,--jobs).")
    Term.(
      const run $ file $ config_arg $ sensitive_arg $ exhaust_mode_arg
      $ max_trace $ cycles_arg $ json $ static $ settle $ jobs_arg ()
      $ cache_dir_arg)

(* --- fuzz ------------------------------------------------------------------------- *)

let fuzz_cmd =
  let count =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Generated programs per property family.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Generator seed; a fresh one is drawn (and printed) if omitted.")
  in
  let corpus =
    Arg.(
      value & opt string "corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory for shrunk, replayable counterexamples.")
  in
  let properties =
    Arg.(
      value
      & opt (some string) None
      & info [ "properties" ] ~docv:"LIST"
          ~doc:
            "Comma-separated family subset: roundtrip, semantics, efficacy, \
             static-dynamic, absint.")
  in
  let sabotage =
    Arg.(
      value & flag
      & info [ "sabotage" ]
          ~doc:
            "Negative control: disable the complemented re-check in the \
             Branches/Loops passes. The efficacy family must then fail.")
  in
  let sabotage_absint =
    Arg.(
      value & flag
      & info [ "sabotage-absint" ]
          ~doc:
            "Negative control: break the abstract interpreter's fault-taint \
             transfer function so it claims agreement without tracking \
             flows. The absint family's soundness differential must then \
             fail; a green run here means the differential is vacuous.")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run one saved counterexample instead of fuzzing.")
  in
  let max_skip_rate =
    Arg.(
      value & opt float 0.5
      & info [ "max-skip-rate" ] ~docv:"RATE"
          ~doc:
            "Fail (exit 3) when a family skips more than this fraction of \
             its cases: skipped preconditions are not evidence, and a \
             generator drifting into a precondition desert would otherwise \
             \"pass\" while exercising nothing.")
  in
  let run count seed corpus properties sabotage sabotage_absint replay
      max_skip_rate =
    match replay with
    | Some path -> (
      match Gen.Corpus.load path with
      | Error m ->
        Fmt.epr "%s: %s@." path m;
        exit_input
      | Ok entry -> (
        match Gen.Fuzz.replay entry with
        | Error m ->
          Fmt.epr "%s: %s@." path m;
          exit_input
        | Ok Gen.Fuzz.Pass ->
          Fmt.pr "replay %s: %s now passes@." path entry.Gen.Corpus.property;
          0
        | Ok (Gen.Fuzz.Skip m) ->
          Fmt.epr "replay %s: precondition no longer holds (%s)@." path m;
          exit_input
        | Ok (Gen.Fuzz.Fail m) ->
          Fmt.pr "replay %s: %s still fails@.  %s@." path
            entry.Gen.Corpus.property m;
          exit_findings))
    | None when count <= 0 ->
      Fmt.epr "--count expects a positive integer (got %d)@." count;
      exit_input
    | None -> (
      let families =
        match properties with
        | None -> Ok Gen.Fuzz.all_families
        | Some s ->
          String.split_on_char ',' s |> List.map String.trim
          |> List.fold_left
               (fun acc name ->
                 match (acc, Gen.Fuzz.family_of_string name) with
                 | Error _, _ -> acc
                 | Ok _, None -> Error name
                 | Ok fs, Some f -> Ok (fs @ [ f ]))
               (Ok [])
      in
      match families with
      | Error name ->
        Fmt.epr "unknown property family %S@." name;
        exit_input
      | Ok families ->
        let seed =
          match seed with
          | Some s -> s
          | None ->
            Random.self_init ();
            Random.int 0x3FFFFFFF
        in
        Fmt.pr "fuzz: seed %d, %d program(s) per family%s%s@." seed count
          (if sabotage then " [sabotaged complement check]" else "")
          (if sabotage_absint then " [sabotaged abstract interpreter]" else "");
        let summary =
          Gen.Fuzz.run ~dir:corpus ~families ~sabotage ~sabotage_absint ~count
            ~seed ()
        in
        List.iter
          (fun (r : Gen.Fuzz.family_run) ->
            match r.failure with
            | None ->
              Fmt.pr "  %-14s %d checked, %d skipped (%.0f%% skip): ok@."
                (Gen.Fuzz.family_name r.family)
                r.checked r.skipped
                (100. *. Gen.Fuzz.skip_rate r)
            | Some f ->
              Fmt.pr "  %-14s FAILED after %d checks (%d shrink steps)@."
                (Gen.Fuzz.family_name r.family)
                r.checked f.shrink_steps;
              Fmt.pr "    %s@." f.message;
              Option.iter
                (fun p -> Fmt.pr "    counterexample saved to %s@." p)
                f.corpus_path)
          summary.runs;
        let breaches = Gen.Fuzz.skip_breaches ~max_skip_rate summary in
        List.iter
          (fun (r : Gen.Fuzz.family_run) ->
            Fmt.pr
              "  %-14s skip rate %.0f%% exceeds --max-skip-rate %.0f%%@."
              (Gen.Fuzz.family_name r.family)
              (100. *. Gen.Fuzz.skip_rate r)
              (100. *. max_skip_rate))
          breaches;
        if Gen.Fuzz.ok summary && breaches = [] then 0 else exit_findings)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential defense testing on random Mini-C firmware: generated \
          programs are compiled under every pass configuration and \
          cross-checked between the source-level interpreter, the board, \
          and the static analyzers; defended guards are swept with 1/2-bit \
          flash corruption. Failures shrink to replayable $(i,corpus/) \
          files. Exits 0 when every family passes, 3 on a property \
          failure or a skip-rate breach, 2 on invalid input."
       ~exits:
         (Cmd.Exit.info 0 ~doc:"when every property family passes."
         :: Cmd.Exit.info exit_input ~doc:"on invalid input."
         :: Cmd.Exit.info exit_findings
              ~doc:"on a property failure or a skip-rate breach."
         :: Cmd.Exit.defaults))
    Term.(
      const run $ count $ seed $ corpus $ properties $ sabotage
      $ sabotage_absint $ replay $ max_skip_rate)

(* --- serve ----------------------------------------------------------------------- *)

let serve_cmd =
  let run jobs cache_dir =
    let cache = Option.map Cache.open_dir cache_dir in
    with_jobs jobs (fun pool ->
        let svc = Service.create ?pool ?cache () in
        let rec loop () =
          match input_line stdin with
          | exception End_of_file -> 0
          | line when String.trim line = "" -> loop ()
          | line ->
            print_endline (Service.handle_line svc line);
            flush stdout;
            loop ()
        in
        loop ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Batch audit service: read JSON-lines requests on stdin (e.g. \
          $(b,{\"id\":1,\"case\":\"beq\",\"model\":\"and\"})) and stream one \
          JSON result per line. One worker pool, one set of shared sweep \
          memos, and one persistent cache ($(b,--cache-dir)) are shared \
          across all requests, so repeated audits of the same snippet are \
          served without executing a single sweep case (the response's \
          $(i,cache) field says hit, warm or miss; $(i,executed) counts \
          emulated cases). Malformed requests produce an \
          $(b,{\"ok\":false}) response, not a crash. Exits 0 at EOF.")
    Term.(const run $ jobs_arg () $ cache_dir_arg)

let () =
  let doc = "glitching attack and defense toolkit (Glitching Demystified, DSN'21)" in
  let info = Cmd.info "glitchctl" ~version:"1.0.0" ~doc in
  (* Argument-parse failures (e.g. an unknown defense set fed to
     [defenses_conv]) are usage errors and must exit 2 like every other
     invalid input — cmdliner's [eval'] hardwires them to 124, so map
     the eval result ourselves. *)
  let group =
    Cmd.group info
      [ asm_cmd; disasm_cmd; run_cmd; emulate_cmd; compile_cmd; attack_cmd;
        table_cmd; tune_cmd; lint_cmd; prove_cmd; exhaust_cmd; fuzz_cmd;
        serve_cmd ]
  in
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok code) -> code
    | Ok (`Help | `Version) -> 0
    | Error (`Parse | `Term) -> exit_input
    | Error `Exn -> Cmd.Exit.internal_error)
