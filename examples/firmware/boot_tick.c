/* The Tables IV/V evaluation firmware: CubeMX-flavoured boot with
   constant-return init functions, a calibration loop, and a tick loop
   whose success path is designed to be unreachable.  Mirrors
   Resistor.Firmware.boot_tick. */

enum boot_status { BOOT_OK, BOOT_FAIL, CLOCK_READY, UART_READY };

volatile unsigned tick = 1;
volatile unsigned sys_clock = 0;
volatile unsigned uart_ready = 0;
volatile unsigned attack_success = 0;

int clock_init(void) {
  sys_clock = 48;
  return 42;
}

int uart_init(void) {
  uart_ready = 1;
  return 42;
}

int hal_init(void) {
  int calibrate = 0;
  for (int i = 0; i < 64; i = i + 1) {
    calibrate = calibrate + i;
  }
  if (clock_init() == 42) {
    if (uart_init() == 42) {
      return calibrate;
    }
  }
  return 0;
}

int check_tick(void) {
  if (tick == 0) { return BOOT_OK; }
  return BOOT_FAIL;
}

void success(void) {
  attack_success = 170;
}

int main(void) {
  int boot = hal_init();
  __trigger_high();
  while (1) {
    if (check_tick() == BOOT_OK) {
      success();
      __halt();
    }
    tick = tick + 1;
    if (tick == 0) { tick = 1; }
  }
  return boot;
}
