/* The secure-boot bootloader from examples/secure_boot.ml: verify a
   firmware digest, refuse to boot on mismatch.  The attacker wants to
   glitch past verify_signature() == SIG_OK. */

enum verdict { SIG_OK, SIG_BAD };

volatile unsigned fw_word0 = 0xDEAD0001;
volatile unsigned fw_word1 = 0xBEEF0002;
volatile unsigned expected = 0x61B2C290;
volatile unsigned attack_success = 0;

int verify_signature(void) {
  unsigned digest = 0;
  digest = digest ^ (fw_word0 * 3);
  digest = digest ^ (fw_word1 * 5);
  if (digest == expected) { return SIG_OK; }
  return SIG_BAD;
}

int main(void) {
  __trigger_high();
  if (verify_signature() == SIG_OK) {
    attack_success = 170;   /* boot_firmware() */
    __halt();
  }
  while (1) { }             /* recovery: refuse to boot */
  return 0;
}
