/* Table VI worst case: the most glitchable guard from Section V.
   `glitchctl lint` on the undefended build flags the while(!a) guard
   as single-bit-flippable; compiled with --defenses all --sensitive a
   the same guard is re-checked by complemented duplicates and the
   lint comes back clean. */

volatile unsigned a = 0;
volatile unsigned attack_success = 0;

int main(void) {
  __trigger_high();
  while (!a) { }
  attack_success = 170;
  __trigger_low();
  __halt();
  return 0;
}
