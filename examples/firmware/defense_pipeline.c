/* The door-lock firmware from examples/defense_pipeline.ml: a PIN
   check guarding a retry loop — enum diversification, branch and loop
   duplication all participate when defended. */

enum door_state { LOCKED, UNLOCKED, JAMMED };

volatile unsigned pin_ok = 0;
volatile unsigned door = 0;

int check_pin(void) {
  if (pin_ok == 1) { return UNLOCKED; }
  return LOCKED;
}

int main(void) {
  for (int tries = 0; tries < 3; tries = tries + 1) {
    if (check_pin() == UNLOCKED) {
      door = 1;
      return 0;
    }
  }
  return 1;
}
