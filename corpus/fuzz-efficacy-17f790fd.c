// glitchctl fuzz counterexample
// property: efficacy
// seed: 7
// defenses: enums,returns,integrity,branches,loops
// sensitive: attack_success
// sabotage: yes
// message: Branches+Loops: addr 0x8000092 mask 0x0100: silent success — marker set with no detection

volatile unsigned attack_success = 0;

int main() {
  __trigger_high();
  while (!(0)) {
    
  }
  attack_success = 170;
}
