// glitchctl fuzz counterexample
// property: efficacy
// seed: 42
// defenses: enums,returns,integrity,branches,loops
// sensitive: g5,guard13,attack_success
// sabotage: no
// message: Branches+Loops: addr 0x80000ba mask 0x4000: silent success — marker set with no detection

unsigned g5 = 0;

int h6(int p7) {
  return 1;
}

volatile unsigned guard13 = 0;

volatile unsigned attack_success = 0;

int main() {
  g5 = h6(0);
  __trigger_high();
  while (!(guard13)) {
    
  }
  attack_success = 170;
}
