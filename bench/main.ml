(* Regenerates every table and figure of "Glitching Demystified"
   (DSN 2021) on the simulated substrate, plus Bechamel micro-benchmarks
   of the harness itself.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- fig2         -- one experiment
     dune exec bench/main.exe -- table6 --quick
     dune exec bench/main.exe -- fig2 --jobs 4
     dune exec bench/main.exe -- fig2 --cache-dir .glitch-cache
     dune exec bench/main.exe -- scaling      -- jobs ladder, BENCH_6.json

   --jobs N fans the campaign sweeps out over N domains (default: the
   machine's recommended domain count clamped to the work available;
   results are bit-identical at any N). --cache-dir DIR serves fig2's
   sweeps through the persistent result cache (a warm cache executes
   zero sweep cases). Sweep experiments also emit a machine-readable
   "PERF ..." line for the bench trajectory.

   Expected paper values are printed next to measured ones; see
   EXPERIMENTS.md for the discussion of each comparison. *)

let section title =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "============================================================@."

let paper_note fmt = Fmt.pr ("  [paper] " ^^ fmt ^^ "@.")

let pool_jobs = function Some p -> Runtime.Pool.jobs p | None -> 1

(* Every PERF record emitted during the run, newest last; dumped as a
   machine-readable BENCH_<n>.json at exit for the bench trajectory. *)
let perf_log : Stats.Perf.t list ref = ref []

let emit_perf perf =
  perf_log := !perf_log @ [ perf ];
  Fmt.pr "@.%a@.%s@." Stats.Perf.pp perf (Stats.Perf.machine_line perf)

let write_json path records =
  match records with
  | [] -> ()
  | records ->
    let oc = open_out path in
    output_string oc "[\n";
    List.iteri
      (fun i r ->
        if i > 0 then output_string oc ",\n";
        output_string oc ("  " ^ Stats.Perf.to_json r))
      records;
    output_string oc "\n]\n";
    close_out oc;
    Fmt.pr "@.Wrote %s (%d record%s)@." path (List.length records)
      (if List.length records = 1 then "" else "s")

let write_perf_json path = write_json path !perf_log

(* Fold the pool's parallel-region accounting (queue wait, worker
   utilization) into a PERF record, then clear it so the next record
   starts from zero. *)
let with_pool_perf ?pool perf =
  match pool with
  | None -> perf
  | Some p ->
    let jobs = Runtime.Pool.jobs p in
    let s = Runtime.Pool.stats p in
    Runtime.Pool.reset_stats p;
    Stats.Perf.with_pool_stats
      ~wait_s:(Runtime.Pool.stats_wait ~jobs s)
      ~utilization:(Runtime.Pool.stats_utilization ~jobs s)
      perf

(* Fold a hardware sweep's cost into a PERF record: the attempt count
   becomes the item count, and the booted-vs-replayed cycle counters
   record how much emulation the snapshot-replay kernel avoided. *)
let perf_of_sweep (p : Stats.Perf.t) (s : Hw.Attack.sweep) =
  Stats.Perf.with_cycles ~booted:s.emulated_cycles ~replayed:s.replayed_cycles
    { p with Stats.Perf.items = s.attempts; executed = s.attempts }

(* --- Figure 2: glitching effects in emulation ----------------------------- *)

let fig2 ?pool ?cache () =
  section "Figure 2 - bit-flip effects on ARM Thumb conditional branches";
  let cases = Glitch_emu.Testcase.all_conditional_branches in
  let executed = ref 0 and memoized = ref 0 in
  let tally_stats (r : Glitch_emu.Campaign.result) =
    executed := !executed + r.stats.executed;
    memoized := !memoized + r.stats.memoized
  in
  (* With --cache-dir every sweep is served through the audit service:
     intact cache entries come back with zero executed cases. *)
  let svc = Option.map (fun cache -> Service.create ?pool ~cache ()) cache in
  let hits = ref 0 and warms = ref 0 and misses = ref 0 in
  let run_case config case =
    match svc with
    | None -> Glitch_emu.Campaign.run_case ?pool config case
    | Some svc ->
      let r, status = Service.run_case svc config case in
      (match status with
      | Service.Hit -> incr hits
      | Service.Warm -> incr warms
      | Service.Miss -> incr misses);
      r
  in
  let run_all config cases =
    match svc with
    | None -> Glitch_emu.Campaign.run_all ?pool config cases
    | Some _ -> List.map (run_case config) cases
  in
  let run name config =
    Fmt.pr "@.--- %s ---@." name;
    let results = run_all config cases in
    List.iter tally_stats results;
    print_string (Glitch_emu.Report.outcome_table results);
    Fmt.pr "@.Success rate by number of flipped bits:@.";
    print_string (Glitch_emu.Report.success_by_weight_table results);
    Fmt.pr "%s@." (Glitch_emu.Report.summary_line results);
    Glitch_emu.Report.mean_success_rate results
  in
  (* 4 models x 14 branches + 2 models x 3 non-branch cases, 2^16 masks
     each — the per-sweep item count behind the PERF line *)
  let sweeps = (4 * List.length cases) + (2 * List.length Glitch_emu.Testcase.non_branch_cases) in
  let (), perf =
    Stats.Perf.time ~label:"fig2" ~jobs:(pool_jobs pool) ~items:(sweeps * 65536)
      (fun () ->
        let and_rate =
          run "(a) AND model (1 -> 0 flips)"
            (Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.And)
        in
        let or_rate =
          run "(b) OR model (0 -> 1 flips)"
            (Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.Or)
        in
        let and0_rate =
          run "(c) AND model, 0x0000 decoded as invalid"
            { (Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.And) with
              zero_is_invalid = true }
        in
        let xor_rate =
          run "(supplement) XOR model (bidirectional flips)"
            (Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.Xor)
        in
        Fmt.pr
          "@.Summary: AND %.1f%%  OR %.1f%%  AND(0 invalid) %.1f%%  XOR %.1f%%@."
          and_rate or_rate and0_rate xor_rate;
        Fmt.pr "@.Supplement: skip rates for non-branch instructions (the \"skip@.";
        Fmt.pr "every defensive instruction\" limit case):@.";
        Stats.Table.print ~header:[ "Instr"; "AND skip %"; "OR skip %" ]
          (List.map
             (fun (case : Glitch_emu.Testcase.t) ->
               let rate flip =
                 let r =
                   run_case (Glitch_emu.Campaign.default_config flip) case
                 in
                 tally_stats r;
                 Glitch_emu.Campaign.category_percent r
                   Glitch_emu.Campaign.Success
               in
               [ case.name; Fmt.str "%.1f" (rate Glitch_emu.Fault_model.And);
                 Fmt.str "%.1f" (rate Glitch_emu.Fault_model.Or) ])
             Glitch_emu.Testcase.non_branch_cases))
  in
  emit_perf
    (with_pool_perf ?pool
       (Stats.Perf.with_memo ~executed:!executed ~memoized:!memoized perf));
  if Option.is_some svc then
    Fmt.pr "cache: %d hit, %d warm, %d miss (%d case(s) executed)@." !hits
      !warms !misses !executed;
  paper_note "branches skipped >60%% when flipping to 0, <30%% when flipping to 1;";
  paper_note "making 0x0000 invalid left the success rate 'effectively unchanged'."

(* --- Cross-ISA fault tolerance (extension) --------------------------------- *)

let fig2x ?pool () =
  section "Cross-ISA encoding fault tolerance: Thumb-16 vs RV32I (extension)";
  Fmt.pr
    "The paper hypothesises that ISA changes (e.g. an invalid all-zero@.";
  Fmt.pr
    "word) 'could pay large dividends' but cannot test them without@.";
  Fmt.pr "fabricating silicon. In emulation we can: the same campaign, run@.";
  Fmt.pr "over RISC-V's 32-bit encoding (all-zero/all-one words illegal by@.";
  Fmt.pr "construction, weights sampled at 600 masks each unless the@.";
  Fmt.pr "whole population C(32,k) fits the budget, which is enumerated).@.@.";
  let thumb_rates flip =
    let results =
      Glitch_emu.Campaign.run_all ?pool
        (Glitch_emu.Campaign.default_config flip)
        Glitch_emu.Testcase.all_conditional_branches
    in
    (Glitch_emu.Report.mean_success_rate results,
     List.fold_left
       (fun acc r ->
         acc
         +. Glitch_emu.Campaign.category_percent r
              Glitch_emu.Campaign.Invalid_instruction)
       0. results
     /. float_of_int (List.length results))
  in
  let riscv_rates flip =
    let results =
      List.map
        (Riscv.Campaign.run_case (Riscv.Campaign.default_config flip))
        Riscv.Campaign.all_conditional_branches
    in
    let n = float_of_int (List.length results) in
    ( List.fold_left (fun acc r -> acc +. Riscv.Campaign.success_percent r) 0. results
      /. n,
      List.fold_left
        (fun acc r ->
          acc
          +. Riscv.Campaign.category_percent r
               Glitch_emu.Campaign.Invalid_instruction)
        0. results
      /. n )
  in
  Stats.Table.print
    ~header:
      [ "Fault model"; "Thumb skip %"; "Thumb invalid %"; "RV32I skip %";
        "RV32I invalid %" ]
    (List.map
       (fun flip ->
         let ts, ti = thumb_rates flip in
         let rs, ri = riscv_rates flip in
         [ Glitch_emu.Fault_model.name flip; Fmt.str "%.1f" ts;
           Fmt.str "%.1f" ti; Fmt.str "%.1f" rs; Fmt.str "%.1f" ri ])
       Glitch_emu.Fault_model.all);
  Fmt.pr
    "@.The dense 32-bit encoding turns ~3/4 of corruptions into illegal@.";
  Fmt.pr
    "instructions, cutting branch-skip rates by roughly an order of@.";
  Fmt.pr "magnitude - the paper's ISA-hardening hypothesis, confirmed.@."

(* --- Table I: single glitches per clock cycle ------------------------------ *)

let instruction_listing guard =
  match (guard : Hw.Attack.guard) with
  | Hw.Attack.While_not_a | Hw.Attack.While_a ->
    [| "MOV R3, SP"; "ADDS R3, #7"; "LDRB R3, [R3]"; "  (LDRB cont.)";
       "CMP R3, #0"; "B<cc> .loop"; "  (branch cont.)"; "  (branch cont.)" |]
  | Hw.Attack.While_ne_const ->
    [| "LDR R2, [SP, #16]"; "  (LDR cont.)"; "LDR R3, =0xD3B9AEC6";
       "  (LDR cont.)"; "CMP R2, R3"; "B<cc> .loop"; "  (branch cont.)";
       "  (branch cont.)" |]

let table1 ?pool () =
  section "Table I - successful single glitches per clock cycle";
  let sweep = ref Hw.Attack.sweep_zero in
  let (), perf =
    Stats.Perf.time ~label:"table1" ~jobs:(pool_jobs pool) ~items:0 (fun () ->
  List.iter
    (fun guard ->
      let t = Hw.Attack.run_table1 ?pool guard in
      sweep := Hw.Attack.sweep_add !sweep t.sweep1;
      let listing = instruction_listing guard in
      Fmt.pr "@.--- %s (comparator r%d) ---@."
        (Hw.Attack.guard_name guard)
        (Hw.Attack.comparator guard);
      let total = ref 0 in
      let values_seen = Hashtbl.create 32 in
      let rows =
        Array.to_list
          (Array.mapi
             (fun cycle (c : Hw.Attack.cycle_stats) ->
               total := !total + c.successes;
               List.iter (fun (v, _) -> Hashtbl.replace values_seen v ()) c.values;
               let top =
                 c.values
                 |> List.filteri (fun i _ -> i < 4)
                 |> List.map (fun (v, n) -> Fmt.str "0x%X x%d" v n)
                 |> String.concat "  "
               in
               [ string_of_int cycle; listing.(cycle);
                 string_of_int c.successes; top ])
             t.per_cycle)
      in
      Stats.Table.print
        ~header:[ "Cycle"; "Instruction"; "Successes"; "Comparator values" ]
        rows;
      Fmt.pr "Total: %a, %d unique comparator values@."
        Stats.Rate.pp_count_pct
        (!total, 8 * t.attempts_per_cycle)
        (Hashtbl.length values_seen))
    Hw.Attack.all_guards)
  in
  emit_perf (with_pool_perf ?pool (perf_of_sweep perf !sweep));
  paper_note "totals 0.705%% / 0.347%% / 0.449%%; while(!a) ~2x while(a);";
  paper_note "comparator residues included SP (0x20003FE8) and GPIO mixes."

(* --- Table II: multi-glitch ------------------------------------------------- *)

let table2 ?pool () =
  section "Table II - partial vs full multi-glitch (two back-to-back loops)";
  let rows, perf =
    Stats.Perf.time ~label:"table2" ~jobs:(pool_jobs pool) ~items:0 (fun () ->
        List.map
          (fun guard ->
            let t = Hw.Attack.run_table2 ?pool guard in
            let p = Array.fold_left ( + ) 0 t.partial in
            let f = Array.fold_left ( + ) 0 t.full in
            (guard, t, p, f))
          Hw.Attack.all_guards)
  in
  let sweep =
    List.fold_left
      (fun acc (_, (t : Hw.Attack.table2), _, _) ->
        Hw.Attack.sweep_add acc t.sweep2)
      Hw.Attack.sweep_zero rows
  in
  Stats.Table.print
    ~header:
      [ "Cycle"; "!a partial"; "!a full"; "a partial"; "a full"; "ne partial";
        "ne full" ]
    (List.init Hw.Attack.loop_cycles (fun cycle ->
         string_of_int cycle
         :: List.concat_map
              (fun (_, (t : Hw.Attack.table2), _, _) ->
                [ string_of_int t.partial.(cycle); string_of_int t.full.(cycle) ])
              rows));
  List.iter
    (fun (guard, (t : Hw.Attack.table2), p, f) ->
      Fmt.pr "%s: partial %a  full %a  (x%.1f harder)@."
        (Hw.Attack.guard_name guard) Stats.Rate.pp_count_pct (p, t.attempts2)
        Stats.Rate.pp_count_pct (f, t.attempts2)
        (if f = 0 then Float.infinity else float_of_int p /. float_of_int f))
    rows;
  emit_perf (with_pool_perf ?pool (perf_of_sweep perf sweep));
  paper_note "partial 1.330%% / 0.420%% / 0.413%%, full 0.494%% / 0.068%% / 0.258%%;";
  paper_note "multi-glitch 6x / 3x / 1.6x harder than a single glitch."

(* --- Table III: long glitches ------------------------------------------------ *)

let table3 ?pool () =
  section "Table III - long glitches (10-20 contiguous cycles)";
  let results, perf =
    Stats.Perf.time ~label:"table3" ~jobs:(pool_jobs pool) ~items:0 (fun () ->
        List.map
          (fun guard -> (guard, Hw.Attack.run_table3 ?pool guard))
          Hw.Attack.all_guards)
  in
  Stats.Table.print
    ~header:[ "Cycles"; "while(!a)"; "while(a)"; "while(a!=0xD3B9AEC6)" ]
    (List.map
       (fun last ->
         Fmt.str "0-%d" last
         :: List.map
              (fun (_, (t : Hw.Attack.table3)) ->
                string_of_int (List.assoc last t.windows))
              results)
       [ 10; 11; 12; 13; 14; 15; 16; 17; 18; 19; 20 ]);
  List.iter
    (fun (guard, (t : Hw.Attack.table3)) ->
      let total = List.fold_left (fun acc (_, s) -> acc + s) 0 t.windows in
      Fmt.pr "%s: total %a@." (Hw.Attack.guard_name guard)
        Stats.Rate.pp_count_pct
        (total, t.sweep3.attempts))
    results;
  let sweep =
    List.fold_left
      (fun acc (_, (t : Hw.Attack.table3)) -> Hw.Attack.sweep_add acc t.sweep3)
      Hw.Attack.sweep_zero results
  in
  emit_perf (with_pool_perf ?pool (perf_of_sweep perf sweep));
  paper_note "totals 0.101%% / 0.730%% / 0.0992%%: long glitches help while(a)";
  paper_note "most (aborted loads read zero) and barely help the others."

(* --- tables: sweep-kernel timings for the bench trajectory ------------------- *)

(* Times the three hardware-table sweeps for one guard, sequentially and
   (when --jobs N > 1) in parallel, and writes the PERF records to
   BENCH_3.json. The booted/replayed cycle counters quantify how much
   emulation the snapshot-replay kernel avoids; the parallel leg is
   checked bit-identical to the sequential one. *)
let tables ?pool () =
  section "tables - Table I-III sweep kernel (writes BENCH_3.json)";
  let guard = Hw.Attack.While_not_a in
  let records = ref [] in
  let emit r =
    records := !records @ [ r ];
    Fmt.pr "@.%a@.%s@." Stats.Perf.pp r (Stats.Perf.machine_line r)
  in
  let leg name jobs pool =
    let t1, p1 =
      Stats.Perf.time ~label:("tables-t1-" ^ name) ~jobs ~items:0 (fun () ->
          Hw.Attack.run_table1 ?pool guard)
    in
    emit (with_pool_perf ?pool (perf_of_sweep p1 t1.Hw.Attack.sweep1));
    let t2, p2 =
      Stats.Perf.time ~label:("tables-t2-" ^ name) ~jobs ~items:0 (fun () ->
          Hw.Attack.run_table2 ?pool guard)
    in
    emit (with_pool_perf ?pool (perf_of_sweep p2 t2.Hw.Attack.sweep2));
    let t3, p3 =
      Stats.Perf.time ~label:("tables-t3-" ^ name) ~jobs ~items:0 (fun () ->
          Hw.Attack.run_table3 ?pool guard)
    in
    emit (with_pool_perf ?pool (perf_of_sweep p3 t3.Hw.Attack.sweep3));
    (t1, t2, t3)
  in
  let s1, s2, s3 = leg "seq" 1 None in
  (match pool with
  | Some p when Runtime.Pool.jobs p > 1 ->
    let jobs = Runtime.Pool.jobs p in
    let q1, q2, q3 = leg (Fmt.str "par%d" jobs) jobs pool in
    let same =
      s1.Hw.Attack.per_cycle = q1.Hw.Attack.per_cycle
      && s2.Hw.Attack.partial = q2.Hw.Attack.partial
      && s2.Hw.Attack.full = q2.Hw.Attack.full
      && s3.Hw.Attack.windows = q3.Hw.Attack.windows
    in
    if same then
      Fmt.pr "@.parallel (%d jobs) == sequential: tables bit-identical@." jobs
    else Fmt.pr "@.WARNING: parallel tables diverge from the sequential run@."
  | Some _ | None -> ());
  write_json "BENCH_3.json" !records

(* --- scaling: the fig2 sweep kernel across a jobs ladder ---------------------- *)

(* The exact fig2 workload (62 sweeps of 2^16 masks), quietly: all four
   model configs over the conditional branches plus the And/Or
   non-branch supplement, results in a fixed order so legs can be
   compared bit for bit. *)
let fig2_workload ?pool () =
  let cases = Glitch_emu.Testcase.all_conditional_branches in
  let branch_configs =
    [ Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.And;
      Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.Or;
      { (Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.And) with
        zero_is_invalid = true };
      Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.Xor ]
  in
  List.concat_map
    (fun config -> Glitch_emu.Campaign.run_all ?pool config cases)
    branch_configs
  @ List.concat_map
      (fun flip ->
        List.map
          (Glitch_emu.Campaign.run_case ?pool
             (Glitch_emu.Campaign.default_config flip))
          Glitch_emu.Testcase.non_branch_cases)
      [ Glitch_emu.Fault_model.And; Glitch_emu.Fault_model.Or ]

let fig2_workload_sweeps =
  (4 * List.length Glitch_emu.Testcase.all_conditional_branches)
  + (2 * List.length Glitch_emu.Testcase.non_branch_cases)

(* Runs the fig2 workload at --jobs 1, 2, 4 and 8 (a fresh pool per
   leg), checks every leg's tables bit-identical to the sequential one,
   and writes all four PERF rows to BENCH_6.json. With the shared memo
   store the executed counter must NOT grow with the job count — that
   counter parity, not wall-clock on a core-starved CI container, is
   the evidence that the old duplicated-execution inversion is gone. *)
let scaling () =
  section "scaling - fig2 sweep kernel at --jobs 1,2,4,8 (writes BENCH_6.json)";
  let records = ref [] in
  let emit r =
    records := !records @ [ r ];
    Fmt.pr "@.%a@.%s@." Stats.Perf.pp r (Stats.Perf.machine_line r)
  in
  let leg jobs =
    let with_p pool =
      Option.iter Runtime.Pool.reset_stats pool;
      let results, perf =
        Stats.Perf.time ~label:"fig2" ~jobs
          ~items:(fig2_workload_sweeps * 65536) (fun () ->
            fig2_workload ?pool ())
      in
      let executed, memoized =
        List.fold_left
          (fun (e, m) (r : Glitch_emu.Campaign.result) ->
            (e + r.stats.executed, m + r.stats.memoized))
          (0, 0) results
      in
      emit
        (with_pool_perf ?pool
           (Stats.Perf.with_memo ~executed ~memoized perf));
      results
    in
    if jobs = 1 then with_p None
    else Runtime.Pool.with_pool ~jobs (fun p -> with_p (Some p))
  in
  let baseline = leg 1 in
  let identical =
    List.for_all
      (fun jobs ->
        List.for_all2
          (fun (a : Glitch_emu.Campaign.result)
               (b : Glitch_emu.Campaign.result) ->
            a.by_weight = b.by_weight && a.totals = b.totals)
          baseline (leg jobs))
      [ 2; 4; 8 ]
  in
  if identical then
    Fmt.pr "@.tables bit-identical across --jobs 1, 2, 4, 8@."
  else Fmt.pr "@.WARNING: tables diverge across job counts@.";
  write_json "BENCH_6.json" !records

(* --- exhaust: trace-wide campaign across a jobs ladder ------------------------- *)

(* The whole-image exhaustive injector on the undefended guard-loop
   firmware at --jobs 1, 2, 4, 8 (a fresh pool per leg). Every leg's
   per-function verdict tables are checked bit-identical to the
   sequential one — the pruning all flows through one shared state map,
   so the only schedule-dependent number is the pruned/executed split
   (two workers racing a cold state both execute it). The PERF rows,
   with the pruned counters, land in BENCH_7.json. *)
let exhaust_bench () =
  section
    "exhaust - trace-wide fault campaign at --jobs 1,2,4,8 (writes BENCH_7.json)";
  let compiled =
    Resistor.Driver.compile Resistor.Config.none Resistor.Firmware.guard_loop
  in
  let spec = Exhaust.Campaign.spec_of_image ~name:"guard_loop" compiled.image in
  let config = Exhaust.Campaign.default_config () in
  let records = ref [] in
  let emit r =
    records := !records @ [ r ];
    Fmt.pr "@.%a@.%s@." Stats.Perf.pp r (Stats.Perf.machine_line r)
  in
  let leg jobs =
    let with_p pool =
      let result, perf =
        Stats.Perf.time ~label:"exhaust" ~jobs ~items:0 (fun () ->
            Exhaust.Campaign.run ?pool spec config)
      in
      let perf =
        { (with_pool_perf ?pool perf) with
          Stats.Perf.items = result.Exhaust.Campaign.points }
        |> Stats.Perf.with_pruned ~executed:result.Exhaust.Campaign.executed
             ~pruned:result.Exhaust.Campaign.pruned
      in
      emit perf;
      result
    in
    if jobs = 1 then with_p None
    else Runtime.Pool.with_pool ~jobs (fun p -> with_p (Some p))
  in
  let base = leg 1 in
  Fmt.pr
    "@.%d injection points over %d cycles: %d faulted at the injected step,@."
    base.Exhaust.Campaign.points base.trace_steps base.faulted;
  Fmt.pr "%d continuations executed, %d pruned (%.1f%% shared), %d distinct states@."
    base.executed base.pruned
    (100. *. Exhaust.Campaign.prune_rate base)
    base.states;
  let identical =
    List.for_all
      (fun jobs ->
        let r = leg jobs in
        r.Exhaust.Campaign.rows = base.rows
        && r.totals = base.totals && r.points = base.points
        && r.faulted = base.faulted && r.states = base.states)
      [ 2; 4; 8 ]
  in
  if identical then
    Fmt.pr "@.verdict tables bit-identical across --jobs 1, 2, 4, 8@."
  else Fmt.pr "@.WARNING: verdict tables diverge across job counts@.";
  write_json "BENCH_7.json" !records

(* --- absint: static pre-pruner + fault-flow prover ----------------------------- *)

(* The abstract-interpretation layer end to end: the static pre-pruner
   share of the guard-loop exhaust workload (with a jobs-1/4 parity
   check — the statically proven verdicts are computed before any
   worker runs, so the split is deterministic), the same floor on the
   fig2 conditional-branch workload the issue names, the fault-flow
   prover's wall time on the defended and undefended builds, and the
   reachability-weighted agreement concordance next to the unweighted
   one. PERF rows land in BENCH_9.json. *)
let absint_bench () =
  section
    "absint - static pre-pruner + fault-flow prover (writes BENCH_9.json)";
  let records = ref [] in
  let emit r =
    records := !records @ [ r ];
    Fmt.pr "@.%a@.%s@." Stats.Perf.pp r (Stats.Perf.machine_line r)
  in
  (* static pre-pruner on the guard-loop exhaust workload *)
  let compiled =
    Resistor.Driver.compile Resistor.Config.none Resistor.Firmware.guard_loop
  in
  let spec = Exhaust.Campaign.spec_of_image ~name:"guard_loop" compiled.image in
  let config =
    { (Exhaust.Campaign.default_config ()) with
      Exhaust.Campaign.max_trace = 256;
      settle_steps = Some 64;
      static_prune = true }
  in
  let leg label jobs config =
    let run pool =
      let result, perf =
        Stats.Perf.time ~label ~jobs ~items:0 (fun () ->
            Exhaust.Campaign.run ?pool spec config)
      in
      emit
        ({ (with_pool_perf ?pool perf) with
           Stats.Perf.items = result.Exhaust.Campaign.points }
        |> Stats.Perf.with_pruned ~executed:result.Exhaust.Campaign.executed
             ~pruned:result.Exhaust.Campaign.pruned
             ~static_pruned:result.Exhaust.Campaign.static_pruned);
      result
    in
    if jobs = 1 then run None
    else Runtime.Pool.with_pool ~jobs (fun p -> run (Some p))
  in
  let plain =
    leg "absint-off" 1 { config with Exhaust.Campaign.static_prune = false }
  in
  let seq = leg "absint-static" 1 config in
  let par = leg "absint-static" 4 config in
  Fmt.pr
    "@.static pre-pruner: %d of %d points proven without emulation \
     (%d executed vs %d without it)@."
    seq.Exhaust.Campaign.static_pruned seq.points seq.executed plain.executed;
  if seq.Exhaust.Campaign.static_pruned > 0 then
    Fmt.pr "static pre-pruner floor holds: static_pruned > 0@."
  else Fmt.pr "WARNING: static pre-pruner proved nothing on guard_loop@.";
  if
    seq.Exhaust.Campaign.rows = par.Exhaust.Campaign.rows
    && seq.totals = par.totals && seq.verdicts = par.verdicts
    && seq.static_pruned = par.static_pruned
  then Fmt.pr "verdict tables bit-identical at --jobs 1 and 4@."
  else Fmt.pr "WARNING: static-pruned tables diverge across job counts@.";
  (* the fig2 conditional-branch workload: a terminating baseline *)
  let case = Glitch_emu.Testcase.conditional_branch Thumb.Instr.EQ in
  let fig2_spec = Exhaust.Campaign.spec_of_case case in
  let fig2_config =
    { (Exhaust.Campaign.default_config ()) with
      Exhaust.Campaign.max_trace = 64;
      static_prune = true }
  in
  let fig2, perf =
    Stats.Perf.time ~label:"absint-fig2" ~jobs:1 ~items:0 (fun () ->
        Exhaust.Campaign.run fig2_spec fig2_config)
  in
  emit
    ({ perf with Stats.Perf.items = fig2.Exhaust.Campaign.points }
    |> Stats.Perf.with_pruned ~executed:fig2.Exhaust.Campaign.executed
         ~pruned:fig2.Exhaust.Campaign.pruned
         ~static_pruned:fig2.Exhaust.Campaign.static_pruned);
  if fig2.Exhaust.Campaign.static_pruned > 0 then
    Fmt.pr "@.fig2 workload floor holds: static_pruned = %d > 0@."
      fig2.Exhaust.Campaign.static_pruned
  else Fmt.pr "@.WARNING: static pre-pruner proved nothing on fig2 workload@.";
  (* fault-flow prover wall time, both builds *)
  let prove label defenses =
    let compiled = Resistor.Driver.compile defenses Resistor.Firmware.guard_loop in
    let report, perf =
      Stats.Perf.time ~label ~jobs:1 ~items:0 (fun () ->
          Absint.Prove.run ~config:compiled.Resistor.Driver.config
            ~reports:compiled.Resistor.Driver.reports
            ~modul:compiled.Resistor.Driver.modul compiled.Resistor.Driver.image)
    in
    emit { perf with Stats.Perf.items = report.Absint.Prove.scenarios };
    Fmt.pr
      "%s: %d/%d guards reached, %d proven, %d escaping, %d unproven@." label
      report.Absint.Prove.guards_reached report.Absint.Prove.guards_total
      report.proven report.escapes report.unproven;
    report
  in
  let undef = prove "prove-undefended" Resistor.Config.none in
  let def =
    prove "prove-defended" (Resistor.Config.all_but_delay ~sensitive:[ "a" ] ())
  in
  if undef.Absint.Prove.escapes > 0 && Absint.Prove.errors def = [] then
    Fmt.pr "prover floors hold: undefended escapes, defended audit clean@."
  else Fmt.pr "WARNING: prover floors violated@.";
  (* reachability-weighted agreement on the fully defended build *)
  let compiled =
    Resistor.Driver.compile
      (Resistor.Config.all ~sensitive:[ "a" ] ())
      Resistor.Firmware.guard_loop
  in
  let spec = Exhaust.Campaign.spec_of_image ~name:"guard_loop" compiled.image in
  let config = Exhaust.Campaign.default_config () in
  let result = Exhaust.Campaign.run spec config in
  let baseline, _ = Exhaust.Campaign.baseline spec config in
  let surface =
    Analysis.Surface.analyze (Analysis.Cfg.of_image compiled.image)
  in
  let agreement = Exhaust.Agreement.of_result ~baseline surface result in
  Fmt.pr
    "@.agreement on the fully defended build: weighted concordance %.0f%%, \
     unweighted %.0f%%@."
    (100. *. agreement.Exhaust.Agreement.concordance)
    (100. *. agreement.Exhaust.Agreement.concordance_unweighted);
  if agreement.Exhaust.Agreement.concordance > 0.5 then
    Fmt.pr "agreement floor holds: weighted concordance > 50%%@."
  else Fmt.pr "WARNING: weighted concordance did not beat 50%%@.";
  write_json "BENCH_9.json" !records

(* --- Section V-B: locating optimal parameters --------------------------------- *)

let tuner () =
  section "Section V-B - search for 100% reliable glitch parameters";
  List.iter
    (fun guard ->
      let r = Hw.Tuner.search guard in
      (match r.found with
      | Some (w, o, c) ->
        Fmt.pr
          "%s: width=%d offset=%d cycle=%d after %d attempts (%d successes), ~%.0f simulated minutes@."
          (Hw.Attack.guard_name guard) w o c r.attempts r.successes
          (r.seconds /. 60.)
      | None ->
        Fmt.pr "%s: no fully reliable parameters found (%d attempts)@."
          (Hw.Attack.guard_name guard) r.attempts);
      Fmt.pr "  %d cycles emulated, %d served by snapshot replay@."
        r.emulated_cycles r.replayed_cycles)
    Hw.Attack.all_guards;
  paper_note "while(a) converged in <59 min (7,031/36,869 successes);";
  paper_note "while(a!=0xD3B9AEC6) in 16 min (901 successes)."

(* --- Tables IV and V: overhead -------------------------------------------------- *)

let table45 () =
  section "Table IV - boot-time overhead per defense (cycles)";
  let rows = Resistor.Overhead.all_rows () in
  let baseline =
    (List.find (fun (r : Resistor.Overhead.row) -> r.label = "None") rows)
      .boot_cycles
  in
  Stats.Table.print
    ~header:[ "Defense"; "Clock cycles"; "% increase"; "Constant"; "% adjusted" ]
    (List.map
       (fun (r : Resistor.Overhead.row) ->
         let constant =
           if r.label = "Delay" || r.label = "All" then
             Resistor.Overhead.flash_commit_cycles
           else 0
         in
         let adj = r.boot_cycles - constant in
         [ r.label; string_of_int r.boot_cycles;
           Fmt.str "%.2f%%"
             (100.
             *. float_of_int (r.boot_cycles - baseline)
             /. float_of_int baseline);
           string_of_int constant;
           Fmt.str "%.2f%%"
             (100. *. float_of_int (adj - baseline) /. float_of_int baseline) ])
       rows);
  paper_note "None 1,736 cycles; Branches +11.35%%; Delay +10,521%% (constant";
  paper_note "177,849 cycles for the flash seed write, +277%% adjusted); others <1%%.";
  section "Table V - size overhead per defense (bytes)";
  let base =
    List.find (fun (r : Resistor.Overhead.row) -> r.label = "None") rows
  in
  Stats.Table.print
    ~header:[ "Defense"; "text"; "text %"; "data"; "bss"; "total"; "total %" ]
    (List.map
       (fun (r : Resistor.Overhead.row) ->
         [ r.label; string_of_int r.text_bytes;
           Fmt.str "%.2f%%"
             (100.
             *. float_of_int (r.text_bytes - base.text_bytes)
             /. float_of_int base.text_bytes);
           string_of_int r.data_bytes; string_of_int r.bss_bytes;
           string_of_int r.total_bytes;
           Fmt.str "%.2f%%"
             (100.
             *. float_of_int (r.total_bytes - base.total_bytes)
             /. float_of_int base.total_bytes) ])
       rows);
  paper_note "All +33%% total, All\\Delay +15%%, Returns ~0%%: the ordering to match."

(* --- Table VI: defended firmware under attack ------------------------------------ *)

let table6 ?pool ~quick () =
  section "Table VI - glitches and detections against defended firmware";
  let sweep_step = if quick then 4 else 1 in
  if quick then
    Fmt.pr "(quick mode: every 4th parameter point; counts scale by ~1/16)@.";
  let scenarios = Resistor.Evaluate.[ Worst_case; Best_case ] in
  let attacks = Resistor.Evaluate.[ Single; Long; Windowed ] in
  let total_attempts = ref 0 in
  let configs =
    [ ("All", Resistor.Config.all ~sensitive:[ "a" ] ());
      ("All\\Delay", Resistor.Config.all_but_delay ~sensitive:[ "a" ] ());
      ("None (reference)", Resistor.Config.none) ]
  in
  let (), perf =
    Stats.Perf.time ~label:"table6" ~jobs:(pool_jobs pool) ~items:0 (fun () ->
  List.iter
    (fun scenario ->
      Fmt.pr "@.--- %s ---@." (Resistor.Evaluate.scenario_name scenario);
      Stats.Table.print
        ~header:
          [ "Attack"; "Defenses"; "Attempts"; "Successes"; "Success %";
            "Detections"; "Detection %" ]
        (List.concat_map
           (fun attack ->
             List.map
               (fun (label, config) ->
                 let o =
                   Resistor.Evaluate.run ?pool ~sweep_step config scenario attack
                 in
                 total_attempts := !total_attempts + o.attempts;
                 [ Resistor.Evaluate.attack_name attack; label;
                   string_of_int o.attempts; string_of_int o.successes;
                   Fmt.str "%a" Stats.Rate.pp_pct
                     (Resistor.Evaluate.success_rate o);
                   string_of_int o.detections;
                   Fmt.str "%a" Stats.Rate.pp_pct
                     (Resistor.Evaluate.detection_rate o) ])
               configs)
           attacks))
    scenarios)
  in
  emit_perf
    (with_pool_perf ?pool
       { perf with Stats.Perf.items = !total_attempts; executed = !total_attempts });
  paper_note "while(!a): single 0.00928%%/0.00371%% success, 98-100%% detected;";
  paper_note "long 0.263%%/0.267%% success with 79.2%%/71.2%% detection;";
  paper_note "if(a==SUCCESS): best attack 0.00557%% (All) / 0.0449%% (All\\Delay)."

(* --- Ablation: which defense stops what ------------------------------------------- *)

let ablation ?pool ~quick () =
  section "Ablation - per-defense efficacy against while(!a) (extension)";
  let sweep_step = if quick then 4 else 2 in
  Fmt.pr "(every %dth parameter point; single + windowed-10 attacks)@." sweep_step;
  let sensitive = [ "a" ] in
  let rows_cfg =
    [ ("None", Resistor.Config.none);
      ("Branches", Resistor.Config.only ~branches:true ());
      ("Loops", Resistor.Config.only ~loops:true ());
      ("Branches+Loops", Resistor.Config.only ~branches:true ~loops:true ());
      ("Integrity", Resistor.Config.only ~integrity:true ~sensitive ());
      ("Delay", Resistor.Config.only ~delay:true ());
      ("All\\Delay", Resistor.Config.all_but_delay ~sensitive ());
      ("All", Resistor.Config.all ~sensitive ()) ]
  in
  let source = Resistor.Evaluate.scenario_source Resistor.Evaluate.Worst_case in
  let images =
    List.map
      (fun (label, config) ->
        (label, (Resistor.Driver.compile config source).image))
      rows_cfg
    @ [ (let image, (_ : Resistor.Cfcss.report) = Resistor.Cfcss.compile source in
         ("CFCSS (baseline)", image)) ]
  in
  Stats.Table.print
    ~header:
      [ "Defenses"; "Single succ"; "Single det"; "Windowed succ"; "Windowed det" ]
    (List.map
       (fun (label, image) ->
         let single =
           Resistor.Evaluate.run_image ?pool ~sweep_step image
             Resistor.Evaluate.Single
         in
         let windowed =
           Resistor.Evaluate.run_image ?pool ~sweep_step image
             Resistor.Evaluate.Windowed
         in
         [ label;
           Fmt.str "%d (%a)" single.successes Stats.Rate.pp_pct
             (Resistor.Evaluate.success_rate single);
           string_of_int single.detections;
           Fmt.str "%d (%a)" windowed.successes Stats.Rate.pp_pct
             (Resistor.Evaluate.success_rate windowed);
           string_of_int windowed.detections ])
       images);
  Fmt.pr "@.Reading the ablation:@.";
  Fmt.pr "- Branches alone barely helps: a loop escape leaves on the FALSE@.";
  Fmt.pr "  edge, which only the Loops pass re-checks (the paper's rationale@.";
  Fmt.pr "  for instrumenting both).@.";
  Fmt.pr "- Integrity kills the register/data-corruption vector: the shadow@.";
  Fmt.pr "  complement no longer matches a corrupted comparator.@.";
  Fmt.pr "- Delay displaces the guard out of the attacker's trigger-relative@.";
  Fmt.pr "  window without detecting anything, exactly its design goal.@.";
  Fmt.pr "- CFCSS (the executable Table VII baseline) detects arrivals along@.";
  Fmt.pr "  illegal edges and dilates the code, but it cannot re-check the@.";
  Fmt.pr "  DIRECTION of a legal branch - the complemented duplication@.";
  Fmt.pr "  checks remain GlitchResistor's differentiator.@."

(* --- defenses: CFI backend overhead + efficacy ------------------------------------- *)

(* The two post-paper CFI backends (Sigcfi = FIPAC-style running
   signature, Domains = SCRAMBLE-CFI-style keyed clusters) measured the
   same way as the paper's rows: Table IV/V overhead on boot_tick, then
   the worst-case guard swept with 1/2-bit corruption next to the CFCSS
   and None baselines. One PERF record per efficacy row lands in
   BENCH_8.json; [items] counts sweep attempts. *)
let defenses ?pool ~quick () =
  section "defenses - CFI backend overhead + efficacy (writes BENCH_8.json)";
  let records = ref [] in
  let base = Resistor.Overhead.measure Resistor.Config.none ~label:"None" in
  let pct v b =
    Fmt.str "%.2f%%" (100. *. float_of_int (v - b) /. float_of_int b)
  in
  Stats.Table.print
    ~header:[ "Defense"; "Boot cycles"; "cycles %"; "total bytes"; "bytes %" ]
    (List.map
       (fun (r : Resistor.Overhead.row) ->
         [ r.label; string_of_int r.boot_cycles;
           pct r.boot_cycles base.boot_cycles;
           string_of_int r.total_bytes;
           pct r.total_bytes base.total_bytes ])
       (base
       :: List.map
            (fun (label, config) -> Resistor.Overhead.measure config ~label)
            Resistor.Overhead.cfi_configurations));
  let sweep_step = if quick then 4 else 2 in
  Fmt.pr "@.(every %dth parameter point; single + windowed-10 attacks)@."
    sweep_step;
  let sensitive = [ "a" ] in
  let source = Resistor.Evaluate.scenario_source Resistor.Evaluate.Worst_case in
  let compile config = (Resistor.Driver.compile config source).image in
  let images =
    [ ("None", "none", compile Resistor.Config.none);
      ("Sigcfi", "sigcfi", compile (Resistor.Config.only ~sigcfi:true ()));
      ("Domains", "domains", compile (Resistor.Config.only ~domains:true ()));
      ( "Sigcfi+Domains", "cfi",
        compile (Resistor.Config.only ~sigcfi:true ~domains:true ()) );
      ( "All\\Delay+Sigcfi+Domains", "all-cfi",
        compile
          { (Resistor.Config.all_but_delay ~sensitive ()) with
            sigcfi = true; domains = true } );
      ( "CFCSS (baseline)", "cfcss",
        fst (Resistor.Cfcss.compile source) ) ]
  in
  Stats.Table.print
    ~header:
      [ "Defense"; "Single succ"; "Single det"; "Windowed succ"; "Windowed det" ]
    (List.map
       (fun (label, slug, image) ->
         let (single, windowed), perf =
           Stats.Perf.time
             ~label:("defenses-" ^ slug)
             ~jobs:(pool_jobs pool) ~items:0
             (fun () ->
               ( Resistor.Evaluate.run_image ?pool ~sweep_step image
                   Resistor.Evaluate.Single,
                 Resistor.Evaluate.run_image ?pool ~sweep_step image
                   Resistor.Evaluate.Windowed ))
         in
         let attempts = single.attempts + windowed.attempts in
         let perf =
           with_pool_perf ?pool
             { perf with Stats.Perf.items = attempts; executed = attempts }
         in
         records := !records @ [ perf ];
         Fmt.pr "@.%a@.%s@." Stats.Perf.pp perf (Stats.Perf.machine_line perf);
         [ label;
           Fmt.str "%d (%a)" single.successes Stats.Rate.pp_pct
             (Resistor.Evaluate.success_rate single);
           string_of_int single.detections;
           Fmt.str "%d (%a)" windowed.successes Stats.Rate.pp_pct
             (Resistor.Evaluate.success_rate windowed);
           string_of_int windowed.detections ])
       images);
  Fmt.pr "@.Reading the CFI rows:@.";
  Fmt.pr "- Both backends detect illegal-edge arrivals (a skipped guard@.";
  Fmt.pr "  lands mid-chain with a stale signature / foreign domain key),@.";
  Fmt.pr "  but neither re-checks the DIRECTION of a legal branch - the@.";
  Fmt.pr "  Table VII residue the complemented duplication checks cover.@.";
  Fmt.pr "- Stacked on All\\Delay they close that gap at roughly the CFCSS@.";
  Fmt.pr "  dilation cost.@.";
  write_json "BENCH_8.json" !records

(* --- Table VII: qualitative comparison -------------------------------------------- *)

let table7 () =
  section "Table VII - software-based defense comparison";
  print_string (Resistor.Compare.render ());
  paper_note "GlitchResistor is the only technique with every property."

(* --- analysis: static glitch-surface analyzer timings -------------------------- *)

(* Times CFG recovery + the 1/2-bit static surface sweep + the defense
   audit over the firmware suite, undefended and fully defended, and
   writes the PERF records to BENCH_4.json. [items] counts the
   perturbations classified (136 per reachable instruction). *)
let analysis () =
  section "analysis - static glitch surface and defense audit (writes BENCH_4.json)";
  let records = ref [] in
  let lint name config source =
    let report, perf =
      Stats.Perf.time ~label:("analysis-" ^ name) ~jobs:1 ~items:0 (fun () ->
          Analysis.Lint.run
            (Analysis.Lint.of_compiled (Resistor.Driver.compile config source)))
    in
    let surface = report.Analysis.Lint.surface in
    let perf =
      { perf with
        Stats.Perf.items = surface.Analysis.Surface.total_flips;
        executed = surface.Analysis.Surface.total_flips }
    in
    records := !records @ [ perf ];
    Fmt.pr "@.%a@.%s@." Stats.Perf.pp perf (Stats.Perf.machine_line perf);
    Fmt.pr "  %s: %d error(s), %d warning(s), %d instruction(s), %.1f%% control@."
      name
      (Analysis.Lint.count Analysis.Lint.Error report)
      (Analysis.Lint.count Analysis.Lint.Warning report)
      (List.length surface.Analysis.Surface.profiles)
      (100. *. surface.Analysis.Surface.image_score);
    report
  in
  let undef = lint "guard-loop-none" Resistor.Config.none Resistor.Firmware.guard_loop in
  let def =
    lint "guard-loop-all"
      (Resistor.Config.all ~sensitive:[ "a" ] ())
      Resistor.Firmware.guard_loop
  in
  ignore (lint "boot-tick-none" Resistor.Config.none Resistor.Firmware.boot_tick);
  ignore
    (lint "boot-tick-all"
       (Resistor.Config.all ~sensitive:[ "tick" ] ())
       Resistor.Firmware.boot_tick);
  Fmt.pr "@.undefended guard-loop errors: %d (expected > 0); defended: %d \
          (expected 0)@."
    (List.length (Analysis.Lint.errors undef))
    (List.length (Analysis.Lint.errors def));
  write_json "BENCH_4.json" !records

(* --- fuzz: randomized differential testing throughput ------------------------- *)

(* One bounded fixed-seed batch per property family; [items] counts the
   generated programs, so the PERF rate reads as programs/second. The
   per-family checked/skipped/pass tallies land in BENCH_5.json next to
   the timings. *)
let fuzz ~quick () =
  section "fuzz - randomized differential defense testing (writes BENCH_5.json)";
  let count = if quick then 10 else 60 in
  let seed = 42 in
  let records = ref [] in
  List.iter
    (fun family ->
      let name = Gen.Fuzz.family_name family in
      let summary, perf =
        Stats.Perf.time ~label:("fuzz-" ^ name) ~jobs:1 ~items:count (fun () ->
            Gen.Fuzz.run ~families:[ family ] ~count ~seed ())
      in
      let run = List.hd summary.Gen.Fuzz.runs in
      let perf = { perf with Stats.Perf.executed = run.Gen.Fuzz.checked } in
      records := !records @ [ perf ];
      Fmt.pr "@.%a@.%s@." Stats.Perf.pp perf (Stats.Perf.machine_line perf);
      Fmt.pr "  %-14s %d generated, %d checked, %d skipped: %s@." name count
        run.Gen.Fuzz.checked run.Gen.Fuzz.skipped
        (match run.Gen.Fuzz.failure with
        | None -> "pass"
        | Some f -> "FAIL: " ^ f.Gen.Fuzz.message))
    Gen.Fuzz.all_families;
  write_json "BENCH_5.json" !records

(* --- Bechamel micro-benchmarks ------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (Bechamel): cost of each experiment's inner loop";
  let open Bechamel in
  let beq_case = Glitch_emu.Testcase.conditional_branch Thumb.Instr.EQ in
  let emu_config = Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.And in
  let board =
    Hw.Board.create
      (Hw.Board.Asm (Hw.Attack.single_loop_program Hw.Attack.While_not_a))
  in
  let image =
    (Resistor.Driver.compile
       (Resistor.Config.all ~sensitive:[ "a" ] ())
       Resistor.Firmware.guard_loop)
      .image
  in
  let defended_board = Hw.Board.create (Hw.Board.Image image) in
  ignore (Hw.Board.run_until_trigger defended_board);
  let snap = Hw.Board.snapshot defended_board in
  let msg = Array.init 16 (fun i -> i * 7 land 0xFF) in
  let code = Reedsolomon.Rs.encode ~ecc_len:8 msg in
  let tests =
    [ Test.make ~name:"fig2: one perturbed execution"
        (Staged.stage (fun () ->
             ignore (Glitch_emu.Campaign.run_one emu_config beq_case ~mask:0x0100)));
      Test.make ~name:"table1: one glitch attempt"
        (Staged.stage (fun () ->
             ignore
               (Hw.Glitcher.run ~max_cycles:300 board
                  [ Hw.Glitcher.single ~width:(-10) ~offset:5 ~ext_offset:4 ])));
      Test.make ~name:"table6: one defended attempt (snapshot restore)"
        (Staged.stage (fun () ->
             ignore
               (Hw.Glitcher.run ~max_cycles:5000 ~from:snap defended_board
                  [ Hw.Glitcher.single ~width:(-10) ~offset:5 ~ext_offset:4 ])));
      Test.make ~name:"table4/5: compile+link defended firmware"
        (Staged.stage (fun () ->
             ignore
               (Resistor.Driver.compile
                  (Resistor.Config.all_but_delay ~sensitive:[ "a" ] ())
                  Resistor.Firmware.guard_loop)));
      Test.make ~name:"substrate: thumb decode (64k words)"
        (Staged.stage (fun () ->
             for w = 0 to 0xFFFF do
               ignore (Thumb.Decode.instr w)
             done));
      Test.make ~name:"substrate: RS encode+decode (16B msg, ecc 8)"
        (Staged.stage (fun () ->
             let received = Array.copy code in
             received.(3) <- received.(3) lxor 0x5A;
             match Reedsolomon.Rs.decode ~ecc_len:8 received with
             | Ok _ -> ()
             | Error _ -> assert false)) ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ ns ] -> Fmt.pr "  %-48s %12.1f ns/run@." name ns
          | Some _ | None -> Fmt.pr "  %-48s (no estimate)@." name)
        ols)
    tests

(* --- driver ---------------------------------------------------------------------------- *)

let usage () =
  print_endline
    "usage: main.exe \
     [all|fig2|table1|table2|table3|tables|scaling|exhaust|tuner|table4|table5|table6|table7|ablation|defenses|analysis|fuzz|micro] \
     [--quick] [--jobs N] [--cache-dir DIR]"

(* Pull "--jobs N" out of the raw argument list. *)
let rec extract_jobs = function
  | [] -> (None, [])
  | "--jobs" :: n :: rest -> (
    match int_of_string_opt n with
    | Some jobs when jobs >= 1 -> (Some jobs, snd (extract_jobs rest))
    | Some _ | None ->
      prerr_endline "--jobs expects a positive integer";
      exit 2)
  | [ "--jobs" ] ->
    prerr_endline "--jobs expects a positive integer";
    exit 2
  | a :: rest ->
    let jobs, args = extract_jobs rest in
    (jobs, a :: args)

(* Pull "--cache-dir DIR" out of the raw argument list. *)
let rec extract_cache_dir = function
  | [] -> (None, [])
  | "--cache-dir" :: dir :: rest when dir <> "" ->
    (Some dir, snd (extract_cache_dir rest))
  | [ "--cache-dir" ] | "--cache-dir" :: _ ->
    prerr_endline "--cache-dir expects a directory path";
    exit 2
  | a :: rest ->
    let d, args = extract_cache_dir rest in
    (d, a :: args)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let jobs, args = extract_jobs args in
  let cache_dir, args = extract_cache_dir args in
  let cache = Option.map (fun dir -> Cache.open_dir dir) cache_dir in
  let jobs = Option.value jobs ~default:(Runtime.Pool.default_jobs ()) in
  let args = List.filter (fun a -> a <> "--quick" && a <> "--") args in
  (* jobs = 1 keeps every experiment on the original sequential path *)
  let pool = if jobs > 1 then Some (Runtime.Pool.create ~jobs ()) else None in
  let experiments =
    [ ("fig2", fig2 ?pool ?cache); ("fig2x", fig2x ?pool);
      ("table1", table1 ?pool);
      ("table2", table2 ?pool); ("table3", table3 ?pool);
      ("tables", tables ?pool); ("scaling", scaling);
      ("exhaust", exhaust_bench); ("absint", absint_bench); ("tuner", tuner);
      ("table4", table45); ("table5", table45);
      ("table6", table6 ?pool ~quick); ("table7", table7);
      ("ablation", ablation ?pool ~quick);
      ("defenses", defenses ?pool ~quick); ("analysis", analysis);
      ("fuzz", fuzz ~quick); ("micro", micro) ]
  in
  let run_all () =
    fig2 ?pool ?cache ();
    fig2x ?pool ();
    table1 ?pool ();
    table2 ?pool ();
    table3 ?pool ();
    tuner ();
    table45 ();
    table6 ?pool ~quick ();
    table7 ();
    ablation ?pool ~quick ();
    defenses ?pool ~quick ();
    analysis ();
    fuzz ~quick ();
    micro ()
  in
  (match args with
  | [] | [ "all" ] -> run_all ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None -> usage ())
      names);
  write_perf_json "BENCH_2.json";
  Option.iter Runtime.Pool.shutdown pool
